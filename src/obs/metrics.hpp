// Hierarchical metrics registry — the simulator's stats framework.
//
// Components register named instruments under dotted paths (the gem5-style
// convention, e.g. "unsync.group0.core1.rob.occupancy"):
//
//   * Counter     — a monotonically growing (or set-once) scalar,
//   * RunningStat — a mean/min/max/stddev gauge (common/stats.hpp),
//   * Histogram   — fixed-bucket distribution (common/stats.hpp).
//
// Threading model: *registration* (counter()/gauge()/histogram()) is
// mutex-guarded and safe from concurrent campaign jobs; *updates* through a
// returned handle are plain non-atomic writes — each simulation is
// single-threaded and owns its registry (one registry per campaign job),
// so the hot path is a single add with no synchronisation. snapshot() must
// not race with updates (take it after run() returns).
//
// Parallel reduction: snapshot() freezes a registry into a MetricsSnapshot;
// snapshots merge associatively (counters add, gauges Welford-merge,
// histograms add bucketwise), so a campaign reduces per-job snapshots in
// submission order and the aggregate is independent of the worker count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::obs {

/// A named scalar counter. Handles returned by MetricsRegistry::counter()
/// stay valid for the registry's lifetime; inc() is the hot-path operation
/// (one untracked 64-bit add).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// An immutable, mergeable view of a registry (or of several, merged).
/// The maps keep paths sorted, so serialisation order — and therefore the
/// JSON/CSV bytes — is a pure function of the contents.
class MetricsSnapshot {
 public:
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, RunningStat> gauges;
  std::map<std::string, Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Associative element-wise merge: counters add, gauges merge via
  /// Welford, histograms add per bucket (shapes must match; throws
  /// std::invalid_argument on a lo/hi/bucket-count mismatch).
  void merge(const MetricsSnapshot& other);

  /// {"schema":"unsync.metrics.v1","counters":{...},"gauges":{...},
  ///  "histograms":{...}} — compact when indent == 0.
  std::string to_json(int indent = 0) const;

  /// One row per instrument: kind,path,value/count,mean,min,max,stddev,sum
  /// followed by histogram bucket rows (kind=histogram_bucket).
  std::string to_csv() const;

  /// Checkpoint hooks (campaign journal persistence): every instrument with
  /// its exact accumulator state, so a snapshot restored from a journal
  /// merges identically to the freshly-computed one.
  void save(ckpt::Serializer& s) const;
  void load(ckpt::Deserializer& d);
};

/// The registry: owns instruments, hands out stable handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter at `path`, creating it (zero) on first use.
  Counter& counter(std::string_view path);
  /// Returns the gauge at `path`, creating it on first use.
  RunningStat& gauge(std::string_view path);
  /// Returns the histogram at `path`; created with [lo, hi) x `buckets` on
  /// first use (later calls ignore the shape arguments).
  Histogram& histogram(std::string_view path, double lo, double hi,
                       std::size_t buckets);

  /// Convenience for publish-at-end-of-run call sites: counter(path).set(v).
  void set_counter(std::string_view path, std::uint64_t v) {
    counter(path).set(v);
  }
  /// Convenience: records `v` as one gauge observation.
  void observe(std::string_view path, double v) { gauge(path).add(v); }

  std::size_t size() const;

  /// Deep-copies every instrument's current state. Callers must ensure no
  /// concurrent updates (take snapshots after the simulation finished).
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<RunningStat>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace unsync::obs
