// Structured event tracing for the simulator.
//
// Components emit typed TraceRecords (fetch, commit, error injection,
// recovery, bus transactions, ...) through a Tracer gate. The gate is the
// whole cost model: a Tracer with no sink attached reduces emit() to one
// predictable-not-taken branch, so the disabled path costs nothing
// measurable in the simulation hot loop (bench_sim_throughput gates this).
// Defining UNSYNC_TRACE_DISABLED at compile time removes even that branch.
//
// Sinks are pluggable: JsonlTraceSink streams one JSON object per line
// (the trace_out=<path> file format, schema documented in
// docs/OBSERVABILITY.md), VectorTraceSink buffers records for tests and
// in-process analysis. Sinks are mutex-guarded, so concurrent campaign
// jobs may share one sink — records never tear, though cross-job order is
// scheduling-dependent (each record carries its own cycle/core fields).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace unsync::obs {

enum class TraceKind : std::uint8_t {
  kFetch,            ///< instruction entered the fetch queue
  kCommit,           ///< instruction architecturally committed
  kErrorInjection,   ///< a soft error strike was applied
  kRecovery,         ///< forward recovery engaged (UnSync / lockstep resync)
  kRollback,         ///< checkpoint / fingerprint rollback engaged
  kBusTransaction,   ///< shared-bus transfer (miss fill, writeback, CB drain)
  kCbDrain,          ///< one Communication-Buffer entry drained to L2
  kFingerprintSync,  ///< Reunion serializing synchronisation
  kCheckpoint,       ///< DMR checkpoint captured
  kJobStart,         ///< campaign job began (core = job index)
  kJobEnd,           ///< campaign job finished (core = job index)
};

/// Stable wire name ("commit", "error_injection", ...).
const char* name_of(TraceKind kind);

/// One fixed-size typed event. Field use by kind is documented in
/// docs/OBSERVABILITY.md; unused fields stay zero.
struct TraceRecord {
  TraceKind kind = TraceKind::kCommit;
  Cycle cycle = 0;          ///< simulated cycle of the event
  std::uint32_t thread = 0; ///< application thread / redundancy group
  std::uint32_t core = 0;   ///< core id (or job index for kJobStart/kJobEnd)
  std::uint64_t seq = 0;    ///< instruction position, when applicable
  std::uint64_t addr = 0;   ///< memory address / payload
  std::uint64_t value = 0;  ///< cost, latency or auxiliary payload
};

/// Renders one record as a single-line JSON object (no trailing newline).
std::string to_json(const TraceRecord& r);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& r) = 0;
};

/// Appends records to an in-memory vector (tests, in-process analysis).
class VectorTraceSink final : public TraceSink {
 public:
  void record(const TraceRecord& r) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(r);
  }

  /// Copy-out accessor (the sink may still be written to concurrently).
  std::vector<TraceRecord> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceRecord> records_;
};

/// Streams records to a file as JSON Lines. Throws std::runtime_error if
/// the file cannot be opened. The stream is flushed every `flush_every`
/// records and from the destructor, so a crashed or interrupted process
/// leaves at most the last partial batch unwritten — trace files stay
/// usable for post-mortem analysis without callers remembering to flush.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path,
                          std::uint64_t flush_every = 256);
  ~JsonlTraceSink() override;

  void record(const TraceRecord& r) override;
  std::uint64_t records_written() const { return written_; }
  void flush();

 private:
  std::mutex mu_;
  std::ofstream out_;
  std::uint64_t written_ = 0;
  std::uint64_t flush_every_;
};

/// The gate components hold: emit() is a no-op branch until a sink is
/// attached. Copyable-by-pointer: systems own one Tracer and hand
/// `&tracer` to their cores and memory hierarchy.
class Tracer {
 public:
  bool enabled() const {
#ifdef UNSYNC_TRACE_DISABLED
    return false;
#else
    return sink_ != nullptr;
#endif
  }

  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void emit(const TraceRecord& r) const {
    if (enabled()) sink_->record(r);
  }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace unsync::obs
