// Statistical dynamic-instruction-stream generator.
//
// Draws an instruction stream whose aggregate properties match a
// BenchmarkProfile: instruction mix, register dependency distances
// (geometric around the profile mean), branch misprediction rate, and a
// three-tier memory locality model (hot set that fits in L1, warm set that
// fits in L2, cold set that misses everywhere) tuned so the L1/L2 miss
// rates land on the profile's targets.
//
// Generation is a pure function of (profile, seed, length): two clones with
// the same parameters yield bit-identical streams, which is what redundant
// core pairs require.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "workload/dyn_op.hpp"
#include "workload/profile.hpp"

namespace unsync::workload {

class SyntheticStream final : public InstStream {
 public:
  SyntheticStream(const BenchmarkProfile& profile, std::uint64_t seed,
                  std::uint64_t length);

  bool next(DynOp* out) override;
  std::unique_ptr<InstStream> clone() const override;
  void reset() override;
  std::uint64_t length() const override { return length_; }
  std::optional<WarmRegion> warm_region() const override {
    return WarmRegion{aspace_base_ + kWarmBase, kWarmPoolLines * 64};
  }
  std::optional<WarmRegion> code_region() const override {
    // Branch pool at 0x1000 plus the 16 KiB straight-line region at 0x4000.
    return WarmRegion{0x1000, 0x4000 + 4096 * 4 - 0x1000};
  }

  const BenchmarkProfile& profile() const { return profile_; }

  /// Checkpoint hooks: RNG state + generation cursor. The restored stream
  /// must be constructed with the same (profile, seed, length).
  void save_state(ckpt::Serializer& s) const override;
  void load_state(ckpt::Deserializer& d) override;

 private:
  Addr draw_address(bool is_store);

  BenchmarkProfile profile_;
  std::uint64_t seed_;
  std::uint64_t length_;

  Rng rng_;
  SeqNum next_seq_ = 0;
  /// Streaming cursor for the cold tier: every cold draw is a fresh line,
  /// guaranteeing an L2 miss (no accidental reuse).
  Addr cold_cursor_ = 0;
  /// Address-space base derived from (profile, seed): distinct workloads
  /// live in disjoint regions so multiprogrammed co-runners do not
  /// accidentally share (and mutually prefetch) each other's data. Clones
  /// share the same offset, which redundant execution requires.
  Addr aspace_base_ = 0;
  /// Cumulative weights over the nine non-store classes (stores are drawn
  /// by the Markov burst model first).
  double nonstore_cumulative_[9] = {};
  bool last_was_store_ = false;
  double p_store_after_store_ = 0;     // profile burstiness
  double p_store_after_nonstore_ = 0;  // derived for the stationary rate
  // Hoisted per-op constants (next() is the simulator's hottest producer):
  double dep_p_ = 0;            // 1 / mean_dep_distance
  double miss1_load_ = 0;       // L1-miss prob for loads
  double miss1_store_ = 0;      // L1-miss prob for stores (0.7x, hotter)

  // Locality model: region base addresses (8-byte aligned draws inside).
  static constexpr Addr kHotBase = 0x0100'0000;
  static constexpr Addr kHotBytes = 16 * 1024;  // < 32 KiB L1
  static constexpr Addr kWarmBase = 0x0200'0000;
  static constexpr Addr kColdBase = 0x1000'0000;
  static constexpr std::size_t kWarmPoolLines = 2048;  // 128 KiB, fits L2
};

}  // namespace unsync::workload
