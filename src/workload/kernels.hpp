// A library of real URISC assembly kernels — the execution-driven workload
// suite. Each kernel is a parameterised program with a C++ reference
// implementation, so tests can validate the golden model end-to-end and the
// timing systems can run genuine programs (not just statistical streams).
//
// Kernels mirror the flavour of the paper's benchmark suites: compression-
// style bit twiddling (checksum), sorting (qsort/bubble), graph traversal
// (dijkstra), dense numeric kernels (matmul, stencil), and a sieve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"

namespace unsync::workload {

struct Kernel {
  std::string name;
  std::string source;                   ///< URISC assembly
  std::vector<std::uint64_t> expected;  ///< golden output channel contents
};

/// Sum of i*i for i in [1, n], emitted once.
Kernel make_vector_sum(unsigned n);

/// Iterative Fibonacci: emits fib(n) (n <= 90 to stay in 64 bits).
Kernel make_fibonacci(unsigned n);

/// Bubble sort of a pseudo-random array; emits the sorted array.
Kernel make_bubble_sort(unsigned n, std::uint64_t seed);

/// Dense n x n integer matrix multiply (A[i][j]=i+j, B[i][j]=i*j+1);
/// emits the trace of C.
Kernel make_matmul(unsigned n);

/// Byte-wise checksum (multiply-xor hash) over a generated buffer.
Kernel make_checksum(unsigned bytes, std::uint64_t seed);

/// 1-D 3-point stencil over an array, `iters` sweeps; emits final center.
Kernel make_stencil(unsigned n, unsigned iters);

/// Sieve of Eratosthenes; emits the count of primes below n.
Kernel make_sieve(unsigned n);

/// Dijkstra-style relaxation over a small dense graph (adjacency matrix
/// with deterministic weights); emits the distance to the last node.
Kernel make_dijkstra(unsigned nodes);

/// Memory-barrier-heavy producer/consumer loop: stresses serializing
/// instructions the way the paper's trap-heavy benchmarks do.
Kernel make_membar_ping(unsigned iterations);

/// All kernels at a small default scale (used by sweeping tests/benches).
std::vector<Kernel> standard_kernel_suite();

/// Assembles a kernel (convenience wrapper).
isa::Program assemble(const Kernel& kernel);

}  // namespace unsync::workload
