// Statistical benchmark profiles.
//
// SPEC2000 and MiBench binaries are licensed and unavailable here, so the
// reproduction models each benchmark as a statistical profile of its dynamic
// instruction stream — the properties that drive every result in the paper:
//   * serializing-instruction fraction  (Figure 4: bzip2 2%, ammp 1.7%,
//     galgel 1% — quoted directly from the paper),
//   * store intensity                   (Figure 6: CB pressure),
//   * dependency distance / MLP         (Figure 5: ROB occupancy),
//   * cache locality                    (memory-system load).
// Mixes and rates for the remaining benchmarks follow the published
// characterisations of SPEC2000 (int vs fp) and MiBench kernels.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace unsync::workload {

/// Fractions of the dynamic instruction mix; must sum to ~1.0 (validated by
/// BenchmarkProfile::validate).
struct InstMix {
  double int_alu = 0;
  double int_mul = 0;
  double int_div = 0;
  double fp_alu = 0;
  double fp_mul = 0;
  double fp_div = 0;
  double load = 0;
  double store = 0;
  double branch = 0;
  double serializing = 0;

  double sum() const;
};

struct BenchmarkProfile {
  std::string name;
  std::string suite;  ///< "spec2000int", "spec2000fp", "mibench"
  InstMix mix;

  /// Mean register dependency distance (in dynamic instructions). Small
  /// values serialise the stream (low ILP); large values expose parallelism.
  double mean_dep_distance = 8.0;

  /// Branch misprediction rate (fraction of branches).
  double branch_mispredict_rate = 0.05;

  /// Store burstiness: P(next inst is a store | this inst is a store) in the
  /// Markov store-emission model. Real programs write arrays in runs, which
  /// is what pressures small store/Communication buffers (Figure 6). Mean
  /// run length = 1 / (1 - burstiness). Must satisfy burstiness < 1 and
  /// produce a valid complement rate for the profile's store fraction.
  double store_burstiness = 0.4;

  /// L1-D miss rate (fraction of loads+stores) and local L2 miss rate
  /// (fraction of L1 misses that also miss in L2).
  double l1_miss_rate = 0.03;
  double l2_miss_rate = 0.10;

  /// Checks internal consistency; returns an error string on failure.
  std::optional<std::string> validate() const;
};

/// All built-in profiles (11 SPEC2000 + 3 MiBench).
const std::vector<BenchmarkProfile>& all_profiles();

/// Profile lookup by name; throws std::out_of_range for unknown names.
const BenchmarkProfile& profile(const std::string& name);

/// Names only, in canonical bench-harness order.
std::vector<std::string> profile_names();

/// The subset used in the paper's Figure 5 sweep (ROB-pressure sensitive
/// plus representative others).
std::vector<std::string> fig5_benchmarks();

}  // namespace unsync::workload
