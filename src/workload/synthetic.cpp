#include "workload/synthetic.hpp"

#include <algorithm>
#include <cassert>

namespace unsync::workload {

namespace {
constexpr isa::InstClass kNonStoreClasses[9] = {
    isa::InstClass::kIntAlu, isa::InstClass::kIntMul, isa::InstClass::kIntDiv,
    isa::InstClass::kFpAlu,  isa::InstClass::kFpMul,  isa::InstClass::kFpDiv,
    isa::InstClass::kLoad,   isa::InstClass::kBranch,
    isa::InstClass::kSerializing,
};
}  // namespace

SyntheticStream::SyntheticStream(const BenchmarkProfile& profile,
                                 std::uint64_t seed, std::uint64_t length)
    : profile_(profile), seed_(seed), length_(length), rng_(seed) {
  assert(!profile.validate().has_value());

  // Disjoint address space per (profile, seed): a deterministic hash picks
  // one of 256 4 GiB slots above the shared low region.
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL;
  for (const char c : profile_.name) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  aspace_base_ = (h & 0xFF) << 32;
  const double w[9] = {
      profile_.mix.int_alu, profile_.mix.int_mul, profile_.mix.int_div,
      profile_.mix.fp_alu,  profile_.mix.fp_mul,  profile_.mix.fp_div,
      profile_.mix.load,    profile_.mix.branch,  profile_.mix.serializing,
  };
  double cum = 0;
  for (int i = 0; i < 9; ++i) {
    cum += w[i];
    nonstore_cumulative_[i] = cum;
  }

  // Two-state Markov store emission. With q = P(store|store) from the
  // profile and target stationary store fraction p, the complement rate is
  // r = P(store|non-store) = p(1-q)/(1-p), which preserves the mix while
  // clustering stores into runs of mean length 1/(1-q).
  const double p = profile_.mix.store;
  double q = std::max(profile_.store_burstiness, p);
  q = std::min(q, 0.95);
  p_store_after_store_ = q;
  p_store_after_nonstore_ = p < 1.0 ? p * (1.0 - q) / (1.0 - p) : 1.0;

  dep_p_ = 1.0 / profile_.mean_dep_distance;
  miss1_load_ = profile_.l1_miss_rate;
  miss1_store_ = profile_.l1_miss_rate * 0.7;
}

void SyntheticStream::reset() {
  rng_.reseed(seed_);
  next_seq_ = 0;
  last_was_store_ = false;
  cold_cursor_ = 0;
}

std::unique_ptr<InstStream> SyntheticStream::clone() const {
  return std::make_unique<SyntheticStream>(profile_, seed_, length_);
}

Addr SyntheticStream::draw_address(bool is_store) {
  // Three-tier locality model tuned so simulated caches see the profile's
  // miss rates. Stores are slightly hotter than loads in real programs
  // (write buffers absorb them), so the store L1-miss probability shrinks.
  const double miss1 = is_store ? miss1_store_ : miss1_load_;
  const double u = rng_.uniform();
  if (u >= miss1) {
    // Hot tier: a small set that is L1-resident after warmup.
    return aspace_base_ + kHotBase + rng_.below(kHotBytes / 8) * 8;
  }
  if (rng_.uniform() < profile_.l2_miss_rate) {
    // Cold tier: a fresh streaming line — guaranteed to miss everywhere.
    const Addr line = aspace_base_ + kColdBase + cold_cursor_;
    cold_cursor_ += 64;
    return line + rng_.below(8) * 8;
  }
  // Warm tier: a 128 KiB region (warm_region()) the systems pre-load into
  // the shared L2. Its footprint exceeds the L1, so these draws miss the
  // L1 but hit the L2 — the profile's local L2 hit behaviour.
  return aspace_base_ + kWarmBase + rng_.below(kWarmPoolLines * 64 / 8) * 8;
}

bool SyntheticStream::next(DynOp* out) {
  if (next_seq_ >= length_) return false;

  DynOp op;
  op.seq = next_seq_++;

  const bool is_store = profile_.mix.store > 0.0 &&
                        rng_.chance(last_was_store_ ? p_store_after_store_
                                                    : p_store_after_nonstore_);
  last_was_store_ = is_store;
  op.cls = is_store
               ? isa::InstClass::kStore
               : kNonStoreClasses[rng_.pick_cumulative(nonstore_cumulative_, 9)];

  // Synthetic PCs: branches draw from a small static-branch pool so a real
  // predictor would see recurring PCs; other classes walk a code region.
  op.pc = op.is_branch() ? 0x1000 + (rng_.below(256) * 4)
                         : 0x4000 + ((op.seq % 4096) * 4);

  // Register dataflow: each source points a geometric distance back
  // (p = 1/mean gives the profile's mean distance). Not every operand is a
  // live register value — immediates, constants and loop-invariant inputs
  // make real instruction streams much sparser than two-live-sources-per-
  // instruction, which is what lets a 4-wide core sustain IPC > 1.
  const double p = dep_p_;
  const int nsrc = op.cls == isa::InstClass::kSerializing ? 0
                   : op.is_load()                         ? 1
                                                          : 2;
  constexpr double kSrcPresent[2] = {0.85, 0.45};
  for (int i = 0; i < nsrc; ++i) {
    if (!rng_.chance(kSrcPresent[i])) continue;
    const std::uint64_t dist = 1 + rng_.geometric(p);
    op.src[i] = dist <= op.seq ? op.seq - dist : kNoSeq;
  }
  op.writes_reg = !(op.is_store() || op.is_branch() || op.is_serializing());

  if (op.is_load() || op.is_store()) {
    op.mem_addr = draw_address(op.is_store());
  }
  if (op.is_branch()) {
    op.taken = rng_.chance(0.6);
    op.has_mispredict_hint = true;
    op.mispredict_hint = rng_.chance(profile_.branch_mispredict_rate);
  }

  *out = op;
  return true;
}

}  // namespace unsync::workload
