// Phased workloads: programs alternate between behavioural phases (compute
// kernels, I/O bursts, pointer-chasing sections). A PhasedStream cycles
// through a list of profiles, emitting `phase_length` instructions from
// each in turn — the time-varying behaviour the interval-IPC sampler and
// the Communication Buffer see in real applications.
#pragma once

#include <memory>
#include <vector>

#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::workload {

class PhasedStream final : public InstStream {
 public:
  /// Cycles through `profiles` every `phase_length` instructions, for
  /// `length` instructions total. Deterministic in (profiles, seed,
  /// phase_length, length). Each phase owns a data region; regions are
  /// revisited on every phase repetition, so caches warm after the first
  /// lap.
  PhasedStream(std::vector<BenchmarkProfile> profiles, std::uint64_t seed,
               std::uint64_t phase_length, std::uint64_t length);

  bool next(DynOp* out) override;
  std::unique_ptr<InstStream> clone() const override;
  void reset() override;
  std::uint64_t length() const override { return length_; }
  std::optional<WarmRegion> warm_region() const override;
  std::optional<WarmRegion> code_region() const override;

  std::size_t phase_count() const { return phases_.size(); }
  /// Which phase the next instruction belongs to.
  std::size_t current_phase() const;

 private:
  std::vector<BenchmarkProfile> profiles_;
  std::uint64_t seed_;
  std::uint64_t phase_length_;
  std::uint64_t length_;

  /// One long-lived generator per profile; each is consulted only for ops
  /// in its phases, so the whole stream remains a pure function of the
  /// constructor arguments.
  std::vector<std::unique_ptr<SyntheticStream>> phases_;
  SeqNum next_seq_ = 0;
};

}  // namespace unsync::workload
