#include "workload/kernels.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "isa/functional_sim.hpp"

namespace unsync::workload {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

/// The three-instruction emit idiom: r1 = service 1, r2 = value-register.
constexpr const char* kEmitR4 = R"(
    addi r1, r0, 1
    add  r2, r0, r4
    syscall
)";

}  // namespace

isa::Program assemble(const Kernel& kernel) {
  return isa::Assembler::assemble(kernel.source);
}

Kernel make_vector_sum(unsigned n) {
  Kernel k;
  k.name = "vector_sum_" + num(n);
  k.source = R"(
    addi r10, r0, )" + num(n) + R"(   # i = n down to 1
    addi r4, r0, 0                    # sum
  loop:
    mul  r5, r10, r10
    add  r4, r4, r5
    addi r10, r10, -1
    bne  r10, r0, loop
)" + kEmitR4 + "    halt\n";

  std::uint64_t sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += i * i;
  k.expected = {sum};
  return k;
}

Kernel make_fibonacci(unsigned n) {
  assert(n >= 1 && n <= 90);
  Kernel k;
  k.name = "fibonacci_" + num(n);
  k.source = R"(
    addi r10, r0, )" + num(n) + R"(
    addi r5, r0, 0          # a = fib(0)
    addi r6, r0, 1          # b = fib(1)
  loop:
    add  r7, r5, r6
    add  r5, r0, r6
    add  r6, r0, r7
    addi r10, r10, -1
    bne  r10, r0, loop
    add  r4, r0, r5
)" + kEmitR4 + "    halt\n";

  std::uint64_t a = 0, b = 1;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  k.expected = {a};
  return k;
}

Kernel make_bubble_sort(unsigned n, std::uint64_t seed) {
  assert(n >= 2 && n <= 512);
  Rng rng(seed);
  std::vector<std::uint64_t> values;
  for (unsigned i = 0; i < n; ++i) values.push_back(rng.below(8000));

  std::string words;
  for (unsigned i = 0; i < n; ++i) {
    words += (i ? ", " : "") + num(values[i]);
  }

  Kernel k;
  k.name = "bubble_sort_" + num(n);
  k.source = R"(
  arr:
    .word )" + words + R"(
    addi r10, r0, )" + num(n) + R"(   # n
  outer:
    addi r11, r0, 0         # i
    addi r12, r0, 0         # swapped
  inner:
    addi r13, r10, -1
    bge  r11, r13, done_in
    la   r20, arr
    slli r21, r11, 3
    add  r20, r20, r21
    ld   r22, 0(r20)
    ld   r23, 8(r20)
    bge  r23, r22, noswap
    st   r23, 0(r20)
    st   r22, 8(r20)
    addi r12, r0, 1
  noswap:
    addi r11, r11, 1
    beq  r0, r0, inner
  done_in:
    bne  r12, r0, outer
    addi r11, r0, 0
    addi r1, r0, 1
  emit:
    bge  r11, r10, end
    la   r20, arr
    slli r21, r11, 3
    add  r20, r20, r21
    ld   r2, 0(r20)
    syscall
    addi r11, r11, 1
    beq  r0, r0, emit
  end:
    halt
)";

  std::sort(values.begin(), values.end());
  k.expected = values;
  return k;
}

Kernel make_matmul(unsigned n) {
  assert(n >= 2 && n <= 24);
  Kernel k;
  k.name = "matmul_" + num(n);
  const std::string N = num(n);
  k.source = R"(
  a:
    .space )" + num(n * n * 8) + R"(
  b:
    .space )" + num(n * n * 8) + R"(
  c:
    .space )" + num(n * n * 8) + R"(
    addi r10, r0, )" + N + R"(
    addi r11, r0, 0          # i
  init_i:
    addi r12, r0, 0          # j
  init_j:
    mul  r20, r11, r10
    add  r20, r20, r12
    slli r20, r20, 3
    la   r21, a
    add  r21, r21, r20
    add  r22, r11, r12       # A[i][j] = i + j
    st   r22, 0(r21)
    la   r21, b
    add  r21, r21, r20
    mul  r22, r11, r12
    addi r22, r22, 1         # B[i][j] = i*j + 1
    st   r22, 0(r21)
    addi r12, r12, 1
    blt  r12, r10, init_j
    addi r11, r11, 1
    blt  r11, r10, init_i
    addi r11, r0, 0          # i
  mul_i:
    addi r12, r0, 0          # j
  mul_j:
    addi r13, r0, 0          # kk
    addi r14, r0, 0          # acc
  mul_k:
    mul  r20, r11, r10
    add  r20, r20, r13
    slli r20, r20, 3
    la   r21, a
    add  r21, r21, r20
    ld   r22, 0(r21)
    mul  r20, r13, r10
    add  r20, r20, r12
    slli r20, r20, 3
    la   r21, b
    add  r21, r21, r20
    ld   r23, 0(r21)
    mul  r24, r22, r23
    add  r14, r14, r24
    addi r13, r13, 1
    blt  r13, r10, mul_k
    mul  r20, r11, r10
    add  r20, r20, r12
    slli r20, r20, 3
    la   r21, c
    add  r21, r21, r20
    st   r14, 0(r21)
    addi r12, r12, 1
    blt  r12, r10, mul_j
    addi r11, r11, 1
    blt  r11, r10, mul_i
    # emit trace(C)
    addi r11, r0, 0
    addi r4, r0, 0
  trace:
    mul  r20, r11, r10
    add  r20, r20, r11
    slli r20, r20, 3
    la   r21, c
    add  r21, r21, r20
    ld   r22, 0(r21)
    add  r4, r4, r22
    addi r11, r11, 1
    blt  r11, r10, trace
)" + kEmitR4 + "    halt\n";

  std::uint64_t trace = 0;
  for (unsigned i = 0; i < n; ++i) {
    std::uint64_t acc = 0;
    for (unsigned kk = 0; kk < n; ++kk) {
      acc += static_cast<std::uint64_t>(i + kk) * (kk * i + 1);
    }
    trace += acc;
  }
  k.expected = {trace};
  return k;
}

Kernel make_checksum(unsigned bytes, std::uint64_t seed) {
  assert(bytes >= 8 && bytes % 8 == 0 && bytes <= 4096);
  Rng rng(seed);
  std::vector<std::uint8_t> buf;
  for (unsigned i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<std::uint8_t>(rng.below(256)));
  }
  std::string words;
  for (unsigned i = 0; i < bytes; i += 8) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b) {
      w |= static_cast<std::uint64_t>(buf[i + b]) << (8 * b);
    }
    words += (i ? ", " : "") + num(w);
  }

  Kernel k;
  k.name = "checksum_" + num(bytes);
  k.source = R"(
  buf:
    .word )" + words + R"(
    addi r10, r0, )" + num(bytes) + R"(
    addi r11, r0, 0          # index
    addi r4, r0, 0           # hash
    addi r12, r0, 31
    la   r20, buf
  loop:
    add  r21, r20, r11
    lb   r22, 0(r21)
    mul  r4, r4, r12
    xor  r4, r4, r22
    addi r11, r11, 1
    blt  r11, r10, loop
)" + kEmitR4 + "    halt\n";

  std::uint64_t h = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    h = h * 31 ^ buf[i];
  }
  k.expected = {h};
  return k;
}

Kernel make_stencil(unsigned n, unsigned iters) {
  assert(n >= 4 && n <= 512 && iters >= 1);
  Kernel k;
  k.name = "stencil_" + num(n) + "x" + num(iters);
  k.source = R"(
  grid_a:
    .space )" + num(n * 8) + R"(
  grid_b:
    .space )" + num(n * 8) + R"(
    addi r10, r0, )" + num(n) + R"(
    addi r15, r0, )" + num(iters) + R"(
    # init a[i] = i*i
    addi r11, r0, 0
  init:
    la   r20, grid_a
    slli r21, r11, 3
    add  r20, r20, r21
    mul  r22, r11, r11
    st   r22, 0(r20)
    addi r11, r11, 1
    blt  r11, r10, init
  sweep:
    addi r11, r0, 1
    addi r13, r10, -1
  row:
    la   r20, grid_a
    slli r21, r11, 3
    add  r20, r20, r21
    ld   r22, -8(r20)
    ld   r23, 0(r20)
    ld   r24, 8(r20)
    add  r22, r22, r23
    add  r22, r22, r24
    addi r25, r0, 3
    div  r22, r22, r25
    la   r26, grid_b
    add  r26, r26, r21
    st   r22, 0(r26)
    addi r11, r11, 1
    blt  r11, r13, row
    # copy interior of b back to a
    addi r11, r0, 1
  copy:
    la   r20, grid_b
    slli r21, r11, 3
    add  r20, r20, r21
    ld   r22, 0(r20)
    la   r26, grid_a
    add  r26, r26, r21
    st   r22, 0(r26)
    addi r11, r11, 1
    blt  r11, r13, copy
    addi r15, r15, -1
    bne  r15, r0, sweep
    # emit a[n/2]
    la   r20, grid_a
    addi r21, r0, )" + num((n / 2) * 8) + R"(
    add  r20, r20, r21
    ld   r4, 0(r20)
)" + kEmitR4 + "    halt\n";

  std::vector<std::int64_t> a(n), b(n);
  for (unsigned i = 0; i < n; ++i) a[i] = static_cast<std::int64_t>(i) * i;
  for (unsigned it = 0; it < iters; ++it) {
    for (unsigned i = 1; i + 1 < n; ++i) {
      b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
    }
    for (unsigned i = 1; i + 1 < n; ++i) a[i] = b[i];
  }
  k.expected = {static_cast<std::uint64_t>(a[n / 2])};
  return k;
}

Kernel make_sieve(unsigned n) {
  assert(n >= 4 && n <= 4096);
  Kernel k;
  k.name = "sieve_" + num(n);
  k.source = R"(
  flags:
    .space )" + num(n) + R"(
    addi r10, r0, )" + num(n) + R"(
    addi r11, r0, 2          # p
  outer:
    mul  r12, r11, r11
    bge  r12, r10, count     # p*p >= n -> done marking
    la   r20, flags
    add  r21, r20, r11
    lb   r22, 0(r21)
    bne  r22, r0, next_p     # already composite
    # mark multiples from p*p
  mark:
    la   r20, flags
    add  r21, r20, r12
    addi r23, r0, 1
    sb   r23, 0(r21)
    add  r12, r12, r11
    blt  r12, r10, mark
  next_p:
    addi r11, r11, 1
    beq  r0, r0, outer
  count:
    addi r11, r0, 2
    addi r4, r0, 0
  cloop:
    bge  r11, r10, done
    la   r20, flags
    add  r21, r20, r11
    lb   r22, 0(r21)
    bne  r22, r0, notprime
    addi r4, r4, 1
  notprime:
    addi r11, r11, 1
    beq  r0, r0, cloop
  done:
)" + kEmitR4 + "    halt\n";

  std::vector<bool> composite(n, false);
  std::uint64_t count = 0;
  for (unsigned p = 2; p < n; ++p) {
    if (!composite[p]) {
      ++count;
      for (unsigned m = p * p; m < n; m += p) composite[m] = true;
    }
  }
  k.expected = {count};
  return k;
}

Kernel make_dijkstra(unsigned nodes) {
  assert(nodes >= 2 && nodes <= 64);
  Kernel k;
  k.name = "dijkstra_" + num(nodes);
  const std::string N = num(nodes);
  // Edge weights are computed on the fly: w(i,j) = ((i*7 + j*13) % 19) + 1.
  k.source = R"(
  dist:
    .space )" + num(nodes * 8) + R"(
  vis:
    .space )" + num(nodes * 8) + R"(
    addi r10, r0, )" + N + R"(
    # init: dist[0] = 0, dist[i>0] = 9999
    addi r11, r0, 0
  init:
    la   r20, dist
    slli r21, r11, 3
    add  r20, r20, r21
    la   r22, 9999
    beq  r11, r0, zero
    st   r22, 0(r20)
    beq  r0, r0, init_next
  zero:
    st   r0, 0(r20)
  init_next:
    addi r11, r11, 1
    blt  r11, r10, init
    addi r15, r0, 0          # iteration
  main:
    # find unvisited u with min dist
    addi r12, r0, -1         # u
    la   r13, 10000          # best
    addi r11, r0, 0
  find:
    la   r20, vis
    slli r21, r11, 3
    add  r20, r20, r21
    ld   r22, 0(r20)
    bne  r22, r0, find_next
    la   r20, dist
    add  r20, r20, r21
    ld   r23, 0(r20)
    bge  r23, r13, find_next
    add  r13, r0, r23
    add  r12, r0, r11
  find_next:
    addi r11, r11, 1
    blt  r11, r10, find
    # mark u visited
    la   r20, vis
    slli r21, r12, 3
    add  r20, r20, r21
    addi r22, r0, 1
    st   r22, 0(r20)
    # relax all j
    addi r14, r0, 0
  relax:
    la   r20, vis
    slli r21, r14, 3
    add  r20, r20, r21
    ld   r22, 0(r20)
    bne  r22, r0, relax_next
    # w = ((u*7 + j*13) % 19) + 1
    addi r23, r0, 7
    mul  r24, r12, r23
    addi r23, r0, 13
    mul  r25, r14, r23
    add  r24, r24, r25
    addi r23, r0, 19
    rem  r24, r24, r23
    addi r24, r24, 1
    add  r24, r13, r24       # dist[u] + w
    la   r20, dist
    add  r20, r20, r21
    ld   r25, 0(r20)
    bge  r24, r25, relax_next
    st   r24, 0(r20)
  relax_next:
    addi r14, r14, 1
    blt  r14, r10, relax
    addi r15, r15, 1
    blt  r15, r10, main
    # emit dist[n-1]
    la   r20, dist
    addi r21, r10, -1
    slli r21, r21, 3
    add  r20, r20, r21
    ld   r4, 0(r20)
)" + kEmitR4 + "    halt\n";

  std::vector<std::int64_t> dist(nodes, 9999);
  std::vector<bool> vis(nodes, false);
  dist[0] = 0;
  for (unsigned it = 0; it < nodes; ++it) {
    std::int64_t best = 10000;
    int u = -1;
    for (unsigned i = 0; i < nodes; ++i) {
      if (!vis[i] && dist[i] < best) {
        best = dist[i];
        u = static_cast<int>(i);
      }
    }
    if (u < 0) break;
    vis[static_cast<unsigned>(u)] = true;
    for (unsigned j = 0; j < nodes; ++j) {
      if (vis[j]) continue;
      const std::int64_t w =
          static_cast<std::int64_t>((u * 7 + j * 13) % 19) + 1;
      if (best + w < dist[j]) dist[j] = best + w;
    }
  }
  k.expected = {static_cast<std::uint64_t>(dist[nodes - 1])};
  return k;
}

Kernel make_membar_ping(unsigned iterations) {
  assert(iterations >= 1 && iterations <= 8000);
  Kernel k;
  k.name = "membar_ping_" + num(iterations);
  k.source = R"(
  mailbox:
    .word 0
    addi r10, r0, )" + num(iterations) + R"(
    addi r4, r0, 0
    la   r20, mailbox
  loop:
    st   r4, 0(r20)
    membar
    ld   r22, 0(r20)
    addi r4, r22, 1
    addi r10, r10, -1
    bne  r10, r0, loop
)" + kEmitR4 + "    halt\n";
  k.expected = {iterations};
  return k;
}

std::vector<Kernel> standard_kernel_suite() {
  return {
      make_vector_sum(64),
      make_fibonacci(60),
      make_bubble_sort(48, 7),
      make_matmul(8),
      make_checksum(512, 3),
      make_stencil(64, 4),
      make_sieve(512),
      make_dijkstra(16),
      make_membar_ping(128),
  };
}

}  // namespace unsync::workload
