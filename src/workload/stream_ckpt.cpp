// Checkpoint hooks for the workload layer: DynOp records and the two
// stream cursor types. Kept in one translation unit so the wire layout of
// a stream's state is reviewable in a single place.
#include "ckpt/serializer.hpp"
#include "workload/dyn_op.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::workload {

void save_op(ckpt::Serializer& s, const DynOp& op) {
  s.u64(op.seq);
  s.u8(static_cast<std::uint8_t>(op.cls));
  s.u64(op.pc);
  s.u64(op.src[0]);
  s.u64(op.src[1]);
  s.b(op.writes_reg);
  s.u64(op.mem_addr);
  s.b(op.taken);
  s.b(op.has_mispredict_hint);
  s.b(op.mispredict_hint);
}

void load_op(ckpt::Deserializer& d, DynOp& op) {
  op.seq = d.u64();
  op.cls = static_cast<isa::InstClass>(d.u8());
  op.pc = d.u64();
  op.src[0] = d.u64();
  op.src[1] = d.u64();
  op.writes_reg = d.b();
  op.mem_addr = d.u64();
  op.taken = d.b();
  op.has_mispredict_hint = d.b();
  op.mispredict_hint = d.b();
}

void InstStream::save_state(ckpt::Serializer&) const {
  throw ckpt::CkptError("this stream type does not support checkpointing");
}

void InstStream::load_state(ckpt::Deserializer&) {
  throw ckpt::CkptError("this stream type does not support checkpointing");
}

void SyntheticStream::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("SYNS");
  // Identity of the generation function — everything else (locality model,
  // cumulative mix weights, address-space base) is re-derived from it at
  // construction, so only the mutable cursor needs saving.
  s.str(profile_.name);
  s.u64(seed_);
  s.u64(length_);
  for (std::uint64_t word : rng_.state()) s.u64(word);
  s.u64(next_seq_);
  s.u64(cold_cursor_);
  s.b(last_was_store_);
  s.end_chunk();
}

void SyntheticStream::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("SYNS");
  const std::string name = d.str();
  const std::uint64_t seed = d.u64();
  const std::uint64_t length = d.u64();
  if (name != profile_.name || seed != seed_ || length != length_) {
    throw ckpt::CkptError("synthetic stream identity mismatch: checkpoint " +
                          name + "/" + std::to_string(seed) + "/" +
                          std::to_string(length) + ", stream " +
                          profile_.name + "/" + std::to_string(seed_) + "/" +
                          std::to_string(length_));
  }
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = d.u64();
  rng_.set_state(state);
  next_seq_ = d.u64();
  cold_cursor_ = d.u64();
  last_was_store_ = d.b();
  d.end_chunk();
}

void TraceStream::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("TRCS");
  s.u64(ops_->size());
  s.u64(cursor_);
  s.end_chunk();
}

void TraceStream::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("TRCS");
  if (d.u64() != ops_->size()) {
    throw ckpt::CkptError("trace stream length mismatch");
  }
  cursor_ = d.u64();
  d.end_chunk();
}

}  // namespace unsync::workload
