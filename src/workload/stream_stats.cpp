#include "workload/stream_stats.hpp"

#include <sstream>
#include <unordered_set>

#include "common/table.hpp"

namespace unsync::workload {

StreamStats characterize(InstStream& stream, std::uint64_t max_ops) {
  StreamStats s;
  std::unordered_set<Addr> lines;
  std::unordered_set<Addr> pages;
  std::uint64_t store_run = 0;

  DynOp op;
  while (s.total < max_ops && stream.next(&op)) {
    ++s.total;
    switch (op.cls) {
      case isa::InstClass::kLoad: ++s.loads; break;
      case isa::InstClass::kStore: ++s.stores; break;
      case isa::InstClass::kBranch: ++s.branches; break;
      case isa::InstClass::kSerializing: ++s.serializing; break;
      case isa::InstClass::kFpAlu:
      case isa::InstClass::kFpMul:
      case isa::InstClass::kFpDiv: ++s.fp_ops; break;
      case isa::InstClass::kIntMul:
      case isa::InstClass::kIntDiv: ++s.int_mul_div; break;
      default: break;
    }

    if (op.is_store()) {
      ++store_run;
    } else if (store_run > 0) {
      s.store_run_length.add(static_cast<double>(store_run));
      store_run = 0;
    }

    if (op.is_branch()) {
      s.taken_branches += op.taken;
      if (op.has_mispredict_hint) s.hinted_mispredicts += op.mispredict_hint;
    }

    for (const SeqNum src : op.src) {
      if (src != kNoSeq) {
        s.dep_distance.add(static_cast<double>(op.seq - src));
      }
    }
    if (op.mem_addr != kNoAddr) {
      lines.insert(op.mem_addr >> 6);
      pages.insert(op.mem_addr >> 12);
    }
  }
  if (store_run > 0) s.store_run_length.add(static_cast<double>(store_run));
  s.distinct_lines_touched = lines.size();
  s.distinct_pages_touched = pages.size();
  return s;
}

std::string StreamStats::summary(const std::string& name) const {
  TextTable t("Stream characterisation: " + name);
  t.set_header({"metric", "value"});
  t.add_row({"instructions", std::to_string(total)});
  t.add_row({"loads", TextTable::pct(load_fraction(), 1)});
  t.add_row({"stores", TextTable::pct(store_fraction(), 1)});
  t.add_row({"branches", TextTable::pct(branch_fraction(), 1)});
  t.add_row({"serializing", TextTable::pct(serializing_fraction(), 2)});
  t.add_row({"fp ops", TextTable::pct(
                           total ? static_cast<double>(fp_ops) / total : 0, 1)});
  t.add_row({"branch taken rate", TextTable::pct(taken_rate(), 1)});
  t.add_row({"mean dep distance", TextTable::num(dep_distance.mean(), 2)});
  t.add_row({"mean store-burst length",
             TextTable::num(store_run_length.mean(), 2)});
  t.add_row({"data lines touched (64B)",
             std::to_string(distinct_lines_touched)});
  t.add_row({"data pages touched (4KB)",
             std::to_string(distinct_pages_touched)});
  return t.str();
}

}  // namespace unsync::workload
