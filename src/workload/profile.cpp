#include "workload/profile.hpp"

#include <cmath>
#include <stdexcept>

namespace unsync::workload {

double InstMix::sum() const {
  return int_alu + int_mul + int_div + fp_alu + fp_mul + fp_div + load +
         store + branch + serializing;
}

std::optional<std::string> BenchmarkProfile::validate() const {
  if (std::abs(mix.sum() - 1.0) > 1e-6) {
    return "instruction mix of '" + name + "' sums to " +
           std::to_string(mix.sum()) + ", expected 1.0";
  }
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(branch_mispredict_rate)) return "branch_mispredict_rate out of [0,1]";
  if (!in01(l1_miss_rate)) return "l1_miss_rate out of [0,1]";
  if (!in01(l2_miss_rate)) return "l2_miss_rate out of [0,1]";
  if (mean_dep_distance < 1.0) return "mean_dep_distance must be >= 1";
  return std::nullopt;
}

namespace {

std::vector<BenchmarkProfile> build_profiles() {
  std::vector<BenchmarkProfile> v;

  // ---- SPEC2000 integer -------------------------------------------------
  // bzip2: compression; 2% serializing instructions (paper, Fig. 4 text),
  // store-heavy output phase, good cache locality.
  v.push_back({.name = "bzip2", .suite = "spec2000int",
               .mix = {.int_alu = 0.47, .int_mul = 0.01, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.24, .store = 0.12, .branch = 0.14,
                       .serializing = 0.02},
               .mean_dep_distance = 6.0, .branch_mispredict_rate = 0.06,
               .store_burstiness = 0.7,
               .l1_miss_rate = 0.015, .l2_miss_rate = 0.08});
  // gzip: compression, store-rich, very regular branches.
  v.push_back({.name = "gzip", .suite = "spec2000int",
               .mix = {.int_alu = 0.45, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.22, .store = 0.15, .branch = 0.175,
                       .serializing = 0.005},
               .mean_dep_distance = 5.0, .branch_mispredict_rate = 0.05,
               .store_burstiness = 0.7,
               .l1_miss_rate = 0.02, .l2_miss_rate = 0.05});
  // mcf: pointer chasing; dominated by L2/DRAM misses, low ILP.
  v.push_back({.name = "mcf", .suite = "spec2000int",
               .mix = {.int_alu = 0.40, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.33, .store = 0.07, .branch = 0.198,
                       .serializing = 0.002},
               .mean_dep_distance = 3.0, .branch_mispredict_rate = 0.09,
               .l1_miss_rate = 0.12, .l2_miss_rate = 0.45});
  // gcc: large irregular control flow, mispredict-bound.
  v.push_back({.name = "gcc", .suite = "spec2000int",
               .mix = {.int_alu = 0.42, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.26, .store = 0.11, .branch = 0.206,
                       .serializing = 0.004},
               .mean_dep_distance = 5.0, .branch_mispredict_rate = 0.08,
               .l1_miss_rate = 0.03, .l2_miss_rate = 0.12});
  // parser: recursive descent, branchy with modest locality.
  v.push_back({.name = "parser", .suite = "spec2000int",
               .mix = {.int_alu = 0.41, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.27, .store = 0.09, .branch = 0.227,
                       .serializing = 0.003},
               .mean_dep_distance = 4.0, .branch_mispredict_rate = 0.07,
               .l1_miss_rate = 0.035, .l2_miss_rate = 0.15});
  // vpr: place & route, fp-tinged integer code.
  v.push_back({.name = "vpr", .suite = "spec2000int",
               .mix = {.int_alu = 0.36, .int_mul = 0.01, .int_div = 0.005,
                       .fp_alu = 0.08, .fp_mul = 0.03, .fp_div = 0.005,
                       .load = 0.26, .store = 0.08, .branch = 0.168,
                       .serializing = 0.002},
               .mean_dep_distance = 6.0, .branch_mispredict_rate = 0.07,
               .l1_miss_rate = 0.03, .l2_miss_rate = 0.20});
  // twolf: placement; small kernels, cache resident.
  v.push_back({.name = "twolf", .suite = "spec2000int",
               .mix = {.int_alu = 0.38, .int_mul = 0.01, .int_div = 0.00,
                       .fp_alu = 0.05, .fp_mul = 0.02, .fp_div = 0.00,
                       .load = 0.29, .store = 0.07, .branch = 0.178,
                       .serializing = 0.002},
               .mean_dep_distance = 5.0, .branch_mispredict_rate = 0.08,
               .l1_miss_rate = 0.045, .l2_miss_rate = 0.10});

  // ---- SPEC2000 floating point -------------------------------------------
  // ammp: molecular dynamics; 1.7% serializing (paper), long fp chains.
  v.push_back({.name = "ammp", .suite = "spec2000fp",
               .mix = {.int_alu = 0.21, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.22, .fp_mul = 0.15, .fp_div = 0.013,
                       .load = 0.26, .store = 0.08, .branch = 0.05,
                       .serializing = 0.017},
               .mean_dep_distance = 10.0, .branch_mispredict_rate = 0.02,
               .l1_miss_rate = 0.07, .l2_miss_rate = 0.30});
  // galgel: fluid dynamics; 1% serializing (paper) AND ROB-saturating —
  // wide independent fp work over long-latency loads (high MLP).
  v.push_back({.name = "galgel", .suite = "spec2000fp",
               .mix = {.int_alu = 0.16, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.25, .fp_mul = 0.19, .fp_div = 0.00,
                       .load = 0.29, .store = 0.05, .branch = 0.05,
                       .serializing = 0.01},
               .mean_dep_distance = 24.0, .branch_mispredict_rate = 0.01,
               .l1_miss_rate = 0.09, .l2_miss_rate = 0.35});
  // equake: earthquake simulation; streaming fp loads.
  v.push_back({.name = "equake", .suite = "spec2000fp",
               .mix = {.int_alu = 0.19, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.21, .fp_mul = 0.17, .fp_div = 0.005,
                       .load = 0.31, .store = 0.06, .branch = 0.054,
                       .serializing = 0.001},
               .mean_dep_distance = 12.0, .branch_mispredict_rate = 0.02,
               .l1_miss_rate = 0.08, .l2_miss_rate = 0.40});
  // art: neural network; tiny kernel, dense fp multiply-accumulate.
  v.push_back({.name = "art", .suite = "spec2000fp",
               .mix = {.int_alu = 0.17, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.24, .fp_mul = 0.20, .fp_div = 0.00,
                       .load = 0.30, .store = 0.04, .branch = 0.049,
                       .serializing = 0.001},
               .mean_dep_distance = 14.0, .branch_mispredict_rate = 0.01,
               .l1_miss_rate = 0.10, .l2_miss_rate = 0.25});

  // ---- MiBench -------------------------------------------------------------
  // qsort: comparison sort; branch- and load-heavy.
  v.push_back({.name = "qsort", .suite = "mibench",
               .mix = {.int_alu = 0.37, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.30, .store = 0.11, .branch = 0.216,
                       .serializing = 0.004},
               .mean_dep_distance = 4.0, .branch_mispredict_rate = 0.10,
               .l1_miss_rate = 0.04, .l2_miss_rate = 0.10});
  // dijkstra: graph shortest path; pointer walking, cache resident.
  v.push_back({.name = "dijkstra", .suite = "mibench",
               .mix = {.int_alu = 0.40, .int_mul = 0.00, .int_div = 0.00,
                       .fp_alu = 0.00, .fp_mul = 0.00, .fp_div = 0.00,
                       .load = 0.31, .store = 0.06, .branch = 0.228,
                       .serializing = 0.002},
               .mean_dep_distance = 3.5, .branch_mispredict_rate = 0.06,
               .l1_miss_rate = 0.025, .l2_miss_rate = 0.08});
  // susan: image smoothing; the most store-intensive workload here —
  // exercises the Communication Buffer in Figure 6.
  v.push_back({.name = "susan", .suite = "mibench",
               .mix = {.int_alu = 0.40, .int_mul = 0.03, .int_div = 0.00,
                       .fp_alu = 0.02, .fp_mul = 0.01, .fp_div = 0.00,
                       .load = 0.26, .store = 0.19, .branch = 0.087,
                       .serializing = 0.003},
               .mean_dep_distance = 8.0, .branch_mispredict_rate = 0.03,
               .store_burstiness = 0.8,
               .l1_miss_rate = 0.03, .l2_miss_rate = 0.12});

  for (const auto& p : v) {
    if (const auto err = p.validate()) {
      throw std::logic_error("built-in profile invalid: " + *err);
    }
  }
  return v;
}

}  // namespace

const std::vector<BenchmarkProfile>& all_profiles() {
  static const std::vector<BenchmarkProfile> profiles = build_profiles();
  return profiles;
}

const BenchmarkProfile& profile(const std::string& name) {
  for (const auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown benchmark profile: " + name);
}

std::vector<std::string> profile_names() {
  std::vector<std::string> names;
  for (const auto& p : all_profiles()) names.push_back(p.name);
  return names;
}

std::vector<std::string> fig5_benchmarks() {
  return {"bzip2", "gzip", "mcf", "ammp", "galgel", "equake", "qsort", "susan"};
}

}  // namespace unsync::workload
