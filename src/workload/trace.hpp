// Trace recording from the functional simulator, and trace replay streams.
//
// This is the execution-driven path: assemble a real URISC program, run it
// on the golden-model FunctionalSim, and record each retired instruction as
// a DynOp (with producer sequence numbers computed from actual register
// dataflow). The recorded trace replays through the same timing model that
// consumes statistical streams.
#pragma once

#include <memory>
#include <vector>

#include "isa/functional_sim.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::workload {

/// Records up to `max_insts` retired instructions of `program` as DynOps.
std::vector<DynOp> record_trace(const isa::Program& program,
                                std::uint64_t max_insts);

/// Binary trace files ("UTRC" format, versioned, little-endian): lets long
/// recordings be captured once and replayed across many sweeps — the
/// trace-driven methodology of simulators like M5.
void save_trace(const std::string& path, const std::vector<DynOp>& ops);

/// Loads a trace written by save_trace. Throws std::runtime_error on I/O
/// failure, bad magic, or version mismatch.
std::vector<DynOp> load_trace(const std::string& path);

/// Replays a recorded trace. Clones share the immutable trace storage and
/// carry independent cursors.
class TraceStream final : public InstStream {
 public:
  explicit TraceStream(std::vector<DynOp> ops);

  /// Shares already-recorded immutable storage — the campaign path: one
  /// recorded kernel trace feeds many concurrent jobs without a copy.
  explicit TraceStream(std::shared_ptr<const std::vector<DynOp>> shared);

  bool next(DynOp* out) override;
  std::unique_ptr<InstStream> clone() const override;
  void reset() override { cursor_ = 0; }
  std::uint64_t length() const override { return ops_->size(); }
  std::optional<WarmRegion> code_region() const override;

  /// Checkpoint hooks: replay cursor only (the trace itself is immutable
  /// and must be supplied identically at restore).
  void save_state(ckpt::Serializer& s) const override;
  void load_state(ckpt::Deserializer& d) override;

 private:
  std::shared_ptr<const std::vector<DynOp>> ops_;
  std::size_t cursor_ = 0;
};

}  // namespace unsync::workload
