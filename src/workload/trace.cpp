#include "workload/trace.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace unsync::workload {

namespace {

constexpr char kTraceMagic[4] = {'U', 'T', 'R', 'C'};
constexpr std::uint32_t kTraceVersion = 1;

/// On-disk record: fixed-width little-endian fields (host is assumed
/// little-endian, as asserted by the round-trip tests).
struct DiskOp {
  std::uint64_t seq;
  std::uint64_t pc;
  std::uint64_t mem_addr;
  std::uint64_t src0;
  std::uint64_t src1;
  std::uint8_t cls;
  std::uint8_t writes_reg;
  std::uint8_t taken;
  std::uint8_t has_hint;
  std::uint8_t hint;
  std::uint8_t pad[3];
};
static_assert(sizeof(DiskOp) == 48);

}  // namespace

void save_trace(const std::string& path, const std::vector<DynOp>& ops) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out.write(kTraceMagic, 4);
  const std::uint32_t version = kTraceVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  const std::uint64_t count = ops.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const DynOp& op : ops) {
    DiskOp d{};
    d.seq = op.seq;
    d.pc = op.pc;
    d.mem_addr = op.mem_addr;
    d.src0 = op.src[0];
    d.src1 = op.src[1];
    d.cls = static_cast<std::uint8_t>(op.cls);
    d.writes_reg = op.writes_reg;
    d.taken = op.taken;
    d.has_hint = op.has_mispredict_hint;
    d.hint = op.mispredict_hint;
    out.write(reinterpret_cast<const char*>(&d), sizeof d);
  }
  if (!out) throw std::runtime_error("short write to trace file: " + path);
}

std::vector<DynOp> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kTraceMagic, 4) != 0) {
    throw std::runtime_error("not a UTRC trace file: " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!in || version != kTraceVersion) {
    throw std::runtime_error("unsupported trace version in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  std::vector<DynOp> ops;
  ops.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    DiskOp d{};
    in.read(reinterpret_cast<char*>(&d), sizeof d);
    if (!in) throw std::runtime_error("truncated trace file: " + path);
    DynOp op;
    op.seq = d.seq;
    op.pc = d.pc;
    op.mem_addr = d.mem_addr;
    op.src[0] = d.src0;
    op.src[1] = d.src1;
    op.cls = static_cast<isa::InstClass>(d.cls);
    op.writes_reg = d.writes_reg != 0;
    op.taken = d.taken != 0;
    op.has_mispredict_hint = d.has_hint != 0;
    op.mispredict_hint = d.hint != 0;
    ops.push_back(op);
  }
  return ops;
}

std::vector<DynOp> record_trace(const isa::Program& program,
                                std::uint64_t max_insts) {
  isa::FunctionalSim sim(program);
  std::vector<DynOp> trace;
  trace.reserve(static_cast<std::size_t>(max_insts));

  // Last-writer tables: which dynamic instruction most recently wrote each
  // architectural register. r0 is hardwired zero and never a producer.
  std::array<SeqNum, 32> int_writer;
  std::array<SeqNum, 32> fp_writer;
  int_writer.fill(kNoSeq);
  fp_writer.fill(kNoSeq);

  auto is_fp_producer = [](isa::Opcode op) {
    using isa::Opcode;
    switch (op) {
      case Opcode::kFadd: case Opcode::kFsub: case Opcode::kFmul:
      case Opcode::kFdiv: case Opcode::kFld:  case Opcode::kFmovi:
        return true;
      default:
        return false;
    }
  };
  auto reads_fp_srcs = [](isa::Opcode op) {
    using isa::Opcode;
    switch (op) {
      case Opcode::kFadd: case Opcode::kFsub: case Opcode::kFmul:
      case Opcode::kFdiv: case Opcode::kFcmplt: case Opcode::kFst:
        return true;
      default:
        return false;
    }
  };

  while (trace.size() < max_insts && !sim.halted()) {
    const isa::StepResult step = sim.step();
    if (step.halted) break;
    const isa::Inst& inst = step.inst;

    DynOp op;
    op.seq = trace.size();
    op.cls = isa::class_of(inst.op);
    op.pc = step.pc;
    op.mem_addr = step.mem_addr;
    op.taken = step.taken;
    op.writes_reg = inst.writes_reg();

    // Source producers from the last-writer tables.
    const bool fp_srcs = reads_fp_srcs(inst.op);
    auto writer = [&](RegIndex reg, bool fp) -> SeqNum {
      if (!fp && reg == 0) return kNoSeq;
      return fp ? fp_writer[reg] : int_writer[reg];
    };
    switch (inst.num_srcs()) {
      case 2: {
        if (inst.is_store()) {
          // Data register lives in the rd slot; it is fp for fst, int for
          // st/sb. The address base register is always an int register.
          op.src[0] = writer(inst.store_data_reg(), fp_srcs);
          op.src[1] = writer(inst.rs1, /*fp=*/false);
        } else {
          op.src[0] = writer(inst.rs1, fp_srcs);
          op.src[1] = writer(inst.rs2, fp_srcs);
        }
        break;
      }
      case 1:
        op.src[0] = writer(inst.rs1, /*fp=*/false);
        break;
      default:
        break;
    }
    // fmovi reads an int source even though it is an fp-class op.
    if (inst.op == isa::Opcode::kFmovi) {
      op.src[0] = writer(inst.rs1, /*fp=*/false);
    }

    // Update last-writer tables.
    if (inst.writes_reg()) {
      if (is_fp_producer(inst.op)) {
        fp_writer[inst.rd] = op.seq;
      } else if (inst.rd != 0) {
        int_writer[inst.rd] = op.seq;
      }
    }

    trace.push_back(op);
  }
  return trace;
}

TraceStream::TraceStream(std::vector<DynOp> ops)
    : ops_(std::make_shared<const std::vector<DynOp>>(std::move(ops))) {}

TraceStream::TraceStream(std::shared_ptr<const std::vector<DynOp>> shared)
    : ops_(std::move(shared)) {}

bool TraceStream::next(DynOp* out) {
  if (cursor_ >= ops_->size()) return false;
  *out = (*ops_)[cursor_++];
  return true;
}

std::unique_ptr<InstStream> TraceStream::clone() const {
  return std::unique_ptr<InstStream>(new TraceStream(ops_));
}

std::optional<InstStream::WarmRegion> TraceStream::code_region() const {
  if (ops_->empty()) return std::nullopt;
  Addr lo = ops_->front().pc, hi = lo;
  for (const auto& op : *ops_) {
    lo = std::min(lo, op.pc);
    hi = std::max(hi, op.pc);
  }
  return WarmRegion{lo, hi - lo + 4};
}

}  // namespace unsync::workload
