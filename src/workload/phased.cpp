#include "workload/phased.hpp"

#include <cassert>

namespace unsync::workload {

PhasedStream::PhasedStream(std::vector<BenchmarkProfile> profiles,
                           std::uint64_t seed, std::uint64_t phase_length,
                           std::uint64_t length)
    : profiles_(std::move(profiles)),
      seed_(seed),
      phase_length_(phase_length),
      length_(length) {
  assert(!profiles_.empty());
  assert(phase_length_ > 0);
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    // Every sub-generator is sized for the whole stream; only the ops of
    // its own phases are consumed. Each phase draws from its own data
    // region (programs touch different structures in different phases);
    // regions revisit across phase repetitions, so caches warm organically
    // after the first visit.
    phases_.push_back(
        std::make_unique<SyntheticStream>(profiles_[i], seed_, length_));
  }
}

std::size_t PhasedStream::current_phase() const {
  return static_cast<std::size_t>((next_seq_ / phase_length_) %
                                  phases_.size());
}

bool PhasedStream::next(DynOp* out) {
  if (next_seq_ >= length_) return false;
  SyntheticStream& gen = *phases_[current_phase()];
  if (!gen.next(out)) return false;
  // The sub-generator numbers its own ops; renumber into the global order
  // and rebase the dependency distances it chose.
  const SeqNum local = out->seq;
  out->seq = next_seq_;
  for (SeqNum& src : out->src) {
    if (src == kNoSeq) continue;
    const SeqNum dist = local - src;
    src = dist <= next_seq_ ? next_seq_ - dist : kNoSeq;
  }
  ++next_seq_;
  return true;
}

void PhasedStream::reset() {
  next_seq_ = 0;
  for (auto& p : phases_) p->reset();
}

std::unique_ptr<InstStream> PhasedStream::clone() const {
  return std::make_unique<PhasedStream>(profiles_, seed_, phase_length_,
                                        length_);
}

std::optional<InstStream::WarmRegion> PhasedStream::warm_region() const {
  return phases_.front()->warm_region();
}

std::optional<InstStream::WarmRegion> PhasedStream::code_region() const {
  return phases_.front()->code_region();
}

}  // namespace unsync::workload
