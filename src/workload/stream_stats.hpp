// Empirical characterisation of a dynamic instruction stream — the
// measurement side of the workload model. Used to validate that synthetic
// streams hit their profile targets, to characterise recorded program
// traces the same way the paper characterises benchmarks (serializing
// fraction, store intensity, dependency distances), and by the CLI driver's
// `characterize` mode.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::workload {

struct StreamStats {
  std::uint64_t total = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t serializing = 0;
  std::uint64_t fp_ops = 0;
  std::uint64_t int_mul_div = 0;

  std::uint64_t taken_branches = 0;
  std::uint64_t hinted_mispredicts = 0;

  RunningStat dep_distance;      ///< over present register sources
  RunningStat store_run_length;  ///< consecutive-store burst lengths

  std::uint64_t distinct_lines_touched = 0;  ///< 64 B data lines
  std::uint64_t distinct_pages_touched = 0;  ///< 4 KiB data pages

  double load_fraction() const { return frac(loads); }
  double store_fraction() const { return frac(stores); }
  double branch_fraction() const { return frac(branches); }
  double serializing_fraction() const { return frac(serializing); }
  double taken_rate() const {
    return branches ? static_cast<double>(taken_branches) /
                          static_cast<double>(branches)
                    : 0.0;
  }
  double hinted_mispredict_rate() const {
    return branches ? static_cast<double>(hinted_mispredicts) /
                          static_cast<double>(branches)
                    : 0.0;
  }

  /// Formatted multi-line characterisation (benchmark-table style).
  std::string summary(const std::string& name) const;

 private:
  double frac(std::uint64_t n) const {
    return total ? static_cast<double>(n) / static_cast<double>(total) : 0.0;
  }
};

/// Consumes (a clone-reset copy of) the stream to the end, or `max_ops`.
StreamStats characterize(InstStream& stream, std::uint64_t max_ops = ~0ull);

}  // namespace unsync::workload
