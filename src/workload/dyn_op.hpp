// The dynamic-instruction record that drives the timing model.
//
// A DynOp is one retired-order instruction of a workload, annotated with
// everything the out-of-order core model needs: functional class, producer
// sequence numbers (register dataflow), memory effective address, and branch
// information. Both workload sources (the statistical generator and traces
// recorded from the functional simulator) emit this common record.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "isa/isa.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::workload {

struct DynOp {
  SeqNum seq = 0;
  isa::InstClass cls = isa::InstClass::kIntAlu;
  Addr pc = 0;

  /// Producer sequence numbers for up to two register sources; kNoSeq when
  /// the operand is absent or produced before the window of interest.
  SeqNum src[2] = {kNoSeq, kNoSeq};
  bool writes_reg = false;

  /// Effective address for loads/stores; kNoAddr otherwise.
  Addr mem_addr = kNoAddr;

  /// Branch fields. When `has_mispredict_hint` is set the core honours the
  /// hint (statistical workloads); otherwise the core's own branch predictor
  /// decides from (pc, taken) — used for recorded traces.
  bool is_branch() const { return cls == isa::InstClass::kBranch; }
  bool taken = false;
  bool has_mispredict_hint = false;
  bool mispredict_hint = false;

  bool is_load() const { return cls == isa::InstClass::kLoad; }
  bool is_store() const { return cls == isa::InstClass::kStore; }
  bool is_serializing() const { return cls == isa::InstClass::kSerializing; }
};

/// Checkpoint helpers: serialise / restore one DynOp (all fields).
void save_op(ckpt::Serializer& s, const DynOp& op);
void load_op(ckpt::Deserializer& d, DynOp& op);

/// A forward iterator over a dynamic instruction stream.
///
/// Redundant-execution systems run the *same* stream on two cores; clone()
/// must return an independent cursor that yields an identical sequence.
class InstStream {
 public:
  virtual ~InstStream() = default;

  /// Produces the next op; returns false at end of stream.
  virtual bool next(DynOp* out) = 0;

  /// Independent cursor over the identical sequence, positioned at start.
  virtual std::unique_ptr<InstStream> clone() const = 0;

  /// Rewinds this cursor to the start of the stream.
  virtual void reset() = 0;

  /// Total ops this stream will yield, if known (0 = unknown/unbounded).
  virtual std::uint64_t length() const { return 0; }

  /// An address region the workload treats as its L2-resident working set.
  /// Systems pre-warm the shared L2 with it before measurement — the
  /// standard cache-warmup methodology (the paper's M5 runs do the same);
  /// without it, short simulations would see a 100% local L2 miss rate.
  struct WarmRegion {
    Addr base = 0;
    std::uint64_t bytes = 0;
  };
  virtual std::optional<WarmRegion> warm_region() const {
    return std::nullopt;
  }

  /// The static code footprint (span of program counters). Systems pre-warm
  /// each core's I-cache with it, so measurements start past the cold pass.
  virtual std::optional<WarmRegion> code_region() const {
    return std::nullopt;
  }

  /// Checkpoint hooks: serialise / restore the cursor state so a restored
  /// stream yields the identical remaining sequence. The base implementations
  /// throw ckpt::CkptError — every stream type fed to a system that is
  /// checkpointed mid-run must override both.
  virtual void save_state(ckpt::Serializer& s) const;
  virtual void load_state(ckpt::Deserializer& d);
};

}  // namespace unsync::workload
