#include "cpu/ooo_core.hpp"

#include <algorithm>
#include <cassert>

namespace unsync::cpu {

namespace {
Addr word_of(Addr addr) { return addr & ~Addr{7}; }
}  // namespace

OooCore::OooCore(CoreId id, const CoreConfig& config,
                 mem::MemoryHierarchy* memory,
                 std::unique_ptr<workload::InstStream> stream, CommitEnv* env)
    : id_(id),
      config_(config),
      memory_(memory),
      stream_(std::move(stream)),
      env_(env ? env : &default_env_),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      fu_int_alu_{config.int_alu, {}},
      fu_int_mul_{config.int_mul, {}},
      fu_int_div_{config.int_div, {}},
      fu_fp_alu_{config.fp_alu, {}},
      fu_fp_mul_{config.fp_mul, {}},
      fu_fp_div_{config.fp_div, {}},
      fu_mem_{config.mem_port, {}} {
  assert(memory_ != nullptr);
  assert(stream_ != nullptr);
  for (FuPool* p : {&fu_int_alu_, &fu_int_mul_, &fu_int_div_, &fu_fp_alu_,
                    &fu_fp_mul_, &fu_fp_div_, &fu_mem_}) {
    p->next_free.assign(p->cfg.count, 0);
  }
}

bool OooCore::done() const {
  return stream_done_ && !pending_stream_op_valid_ && fetch_queue_.empty() &&
         rob_.empty();
}

void OooCore::stall_until(Cycle cycle) {
  frozen_until_ = std::max(frozen_until_, cycle);
}

void OooCore::flush_pipeline() {
  const SeqNum resume = stats_.committed;
  fetch_queue_.clear();
  rob_.clear();
  completion_.clear();
  committed_store_words_.clear();
  iq_count_ = lq_count_ = sq_count_ = 0;
  fetch_blocked_on_ = kNoSeq;
  pending_stream_op_valid_ = false;
  // Reposition the stream cursor at the oldest uncommitted instruction.
  stream_->reset();
  stream_done_ = false;
  workload::DynOp tmp;
  for (SeqNum i = 0; i < resume; ++i) {
    if (!stream_->next(&tmp)) {
      stream_done_ = true;
      break;
    }
  }
}

void OooCore::set_position(SeqNum seq) {
  stats_.committed = seq;
  flush_pipeline();
}

OooCore::FuPool* OooCore::pool_for(isa::InstClass cls) {
  using isa::InstClass;
  switch (cls) {
    case InstClass::kIntAlu:
    case InstClass::kBranch:
      return &fu_int_alu_;
    case InstClass::kIntMul: return &fu_int_mul_;
    case InstClass::kIntDiv: return &fu_int_div_;
    case InstClass::kFpAlu: return &fu_fp_alu_;
    case InstClass::kFpMul: return &fu_fp_mul_;
    case InstClass::kFpDiv: return &fu_fp_div_;
    case InstClass::kLoad:
    case InstClass::kStore:
      return &fu_mem_;
    case InstClass::kSerializing:
    case InstClass::kHalt:
      return nullptr;  // no functional unit needed
  }
  return nullptr;
}

bool OooCore::try_fu(FuPool& pool, Cycle now, Cycle* complete_at) {
  for (auto& free_at : pool.next_free) {
    if (free_at <= now) {
      free_at = pool.cfg.pipelined ? now + 1 : now + pool.cfg.latency;
      *complete_at = now + pool.cfg.latency;
      return true;
    }
  }
  return false;
}

bool OooCore::src_ready(SeqNum src, Cycle now, Cycle* ready_at) const {
  if (src == kNoSeq) return true;
  const auto it = completion_.find(src);
  if (it == completion_.end()) return true;  // producer already committed
  if (ready_at) *ready_at = it->second;
  return it->second <= now;
}

void OooCore::tick(Cycle now) {
  ++stats_.cycles;
  stats_.rob_occupancy_accum += rob_.size();
  if (rob_hist_) rob_hist_->add(static_cast<double>(rob_.size()));

  if (config_.sample_interval != 0 && now >= next_sample_) {
    stats_.interval_committed.push_back(stats_.committed);
    next_sample_ = now + config_.sample_interval;
  }

  if (now < frozen_until_) {
    ++stats_.recovery_stall_cycles;
    return;
  }

  do_commit(now);
  do_issue(now);
  do_dispatch(now);
  do_fetch(now);
}

Cycle OooCore::load_block_bound(const RobEntry& e, Cycle now) const {
  const Addr word = word_of(e.op.mem_addr);
  const RobEntry* match = nullptr;
  for (const RobEntry& other : rob_) {
    if (other.op.seq >= e.op.seq) break;
    // Fence: clears only when the serializing instruction retires — a
    // commit event next_event() already vetoes at the head.
    if (other.op.is_serializing()) return kNever;
    if (other.op.is_store() && word_of(other.op.mem_addr) == word) {
      match = &other;
    }
  }
  if (match) {
    if (!match->issued) return kNever;  // the store's own issue is covered
    if (match->complete_at > now) return match->complete_at;
  }
  return now;  // lsq_load_can_issue would pass: an issue attempt happens
}

Cycle OooCore::next_event(Cycle now) const {
  if (done()) return kNever;
  if (now < frozen_until_) return frozen_until_;

  Cycle cand = kNever;

  // Commit stage: a ready head acts every cycle (commits, or charges a
  // gate/store stall) — veto. An issued-but-incomplete head completes at
  // complete_at; an unissued head is covered by the issue scan below.
  if (!rob_.empty()) {
    const RobEntry& head = rob_.front();
    if (head.issued) {
      if (head.complete_at <= now) return now;
      cand = std::min(cand, head.complete_at);
    }
  }

  // Issue stage: scan exactly the issue-queue window do_issue examines.
  std::uint32_t examined = 0;
  for (const RobEntry& e : rob_) {
    if (!e.in_iq) continue;
    if (++examined > config_.iq_entries) break;

    // Source readiness. A source whose producer has not issued yet
    // (completion kNever) is covered: the producer is an older in_iq
    // entry inside this same window, so its own issue bounds e's.
    Cycle bound = now;
    bool covered = false;
    for (const SeqNum src : e.op.src) {
      if (src == kNoSeq) continue;
      const auto it = completion_.find(src);
      if (it == completion_.end()) continue;  // producer already committed
      if (it->second == kNever) {
        covered = true;
        break;
      }
      bound = std::max(bound, it->second);
    }
    if (covered) continue;
    if (bound > now) {
      cand = std::min(cand, bound);
      continue;
    }

    // Sources ready now: would do_issue attempt (and possibly mutate)?
    switch (e.op.cls) {
      case isa::InstClass::kSerializing:
        // Issues only from the ROB head; becoming head takes an older
        // commit, which is itself a vetoed event.
        if (rob_.front().op.seq == e.op.seq) return now;
        continue;
      case isa::InstClass::kLoad: {
        const Cycle block = load_block_bound(e, now);
        if (block == now) return now;
        if (block != kNever) cand = std::min(cand, block);
        continue;
      }
      case isa::InstClass::kStore: {
        // Blocked only by an older in-flight serializing instruction,
        // whose retirement is a covered commit event.
        bool fenced = false;
        for (const RobEntry& other : rob_) {
          if (other.op.seq >= e.op.seq) break;
          if (other.op.is_serializing()) {
            fenced = true;
            break;
          }
        }
        if (fenced) continue;
        return now;
      }
      default:
        return now;  // would attempt a functional unit
    }
  }

  // Dispatch stage: while the fetch queue is non-empty it either acts or
  // charges exactly one stall counter per cycle.
  if (!fetch_queue_.empty()) {
    const std::uint32_t reserved = env_->reserved_rob_slots_at(id_, now);
    const workload::DynOp& op = fetch_queue_.front();
    if (rob_.size() + reserved >= config_.rob_entries) {
      // ROB-stalled: bounded by the next environment state change
      // (Reunion fingerprint verification frees reserved slots).
      cand = std::min(cand, env_->next_state_change(id_, now));
    } else if (iq_count_ >= config_.iq_entries ||
               (op.is_load() && lq_count_ >= config_.lq_entries) ||
               (op.is_store() && sq_count_ >= config_.sq_entries)) {
      // Queue-stalled: frees only via an issue/commit, already covered.
    } else {
      return now;  // dispatch acts
    }
  }

  // Fetch stage. A front end blocked on a mispredicted branch un-blocks
  // when that branch issues — an issue event covered by the scan above.
  if (fetch_blocked_on_ == kNoSeq) {
    if (now < fetch_resume_at_) {
      cand = std::min(cand, fetch_resume_at_);
    } else if ((!stream_done_ || pending_stream_op_valid_) &&
               fetch_queue_.size() < config_.fetch_queue_entries) {
      return now;  // fetch acts
    }
  }

  return cand;
}

void OooCore::skip_cycles(Cycle from, Cycle to) {
  assert(to > from);
  const Cycle w = to - from;
  stats_.cycles += w;
  stats_.rob_occupancy_accum += static_cast<std::uint64_t>(rob_.size()) * w;
  if (rob_hist_) rob_hist_->add(static_cast<double>(rob_.size()), w);

  if (config_.sample_interval != 0) {
    // Replay `if (now >= next_sample_) sample` for each now in [from, to).
    Cycle c = std::max(from, next_sample_);
    while (c < to) {
      stats_.interval_committed.push_back(stats_.committed);
      next_sample_ = c + config_.sample_interval;
      c = next_sample_;
    }
  }

  if (from < frozen_until_) {
    assert(to <= frozen_until_ && "skip window overruns a recovery stall");
    stats_.recovery_stall_cycles += w;
    return;
  }

  // The window's stall reason is stable (next_event bounded it on every
  // input that could flip it), so the one counter the naive loop would
  // charge per cycle advances by the window length.
  if (!fetch_queue_.empty()) {
    const std::uint32_t reserved = env_->reserved_rob_slots(id_, from);
    const workload::DynOp& op = fetch_queue_.front();
    if (rob_.size() + reserved >= config_.rob_entries) {
      stats_.dispatch_stall_rob += w;
    } else if (iq_count_ >= config_.iq_entries) {
      stats_.dispatch_stall_iq += w;
    } else if ((op.is_load() && lq_count_ >= config_.lq_entries) ||
               (op.is_store() && sq_count_ >= config_.sq_entries)) {
      stats_.dispatch_stall_lsq += w;
    }
  }
  if (fetch_blocked_on_ != kNoSeq) {
    stats_.fetch_blocked_branch += w;
  } else if (from < fetch_resume_at_) {
    assert(to <= fetch_resume_at_ && "skip window overruns a fetch drain");
    stats_.fetch_blocked_serialize += w;
  }
}

void OooCore::do_commit(Cycle now) {
  for (std::uint32_t n = 0; n < config_.commit_width && !rob_.empty(); ++n) {
    RobEntry& head = rob_.front();
    if (!head.issued || head.complete_at > now) break;

    if (!env_->can_commit(id_, head.op, now)) {
      ++stats_.commit_stall_gate;
      break;
    }
    if (head.op.is_store()) {
      if (!env_->on_store_commit(id_, head.op, now)) {
        ++stats_.commit_stall_store;
        break;
      }
      --sq_count_;
      ++stats_.stores;
      committed_store_words_.push_back(head.op.mem_addr & ~Addr{7});
      if (committed_store_words_.size() > 16) {
        committed_store_words_.pop_front();
      }
    }

    switch (head.op.cls) {
      case isa::InstClass::kLoad:
        --lq_count_;
        ++stats_.loads;
        break;
      case isa::InstClass::kBranch:
        ++stats_.branches;
        if (head.mispredicted) ++stats_.mispredicts;
        break;
      case isa::InstClass::kSerializing:
        ++stats_.serializing;
        // Trap/barrier drains the front end after it retires.
        fetch_resume_at_ =
            std::max(fetch_resume_at_, now + config_.serialize_fetch_penalty);
        break;
      default:
        break;
    }

    env_->on_commit(id_, head.op, now);
    if (tracer_ && tracer_->enabled()) {
      tracer_->emit({.kind = obs::TraceKind::kCommit, .cycle = now,
                     .thread = 0, .core = id_, .seq = head.op.seq,
                     .addr = head.op.mem_addr, .value = 0});
    }
    completion_.erase(head.op.seq);
    rob_.pop_front();
    ++stats_.committed;
  }
}

bool OooCore::lsq_load_can_issue(const RobEntry& e, Cycle now,
                                 bool* forwarded) const {
  *forwarded = false;
  const Addr word = word_of(e.op.mem_addr);
  // Youngest older store to the same word decides: not-yet-executed blocks
  // the load; an executed one forwards. Memory ops never pass an in-flight
  // serializing instruction (fence semantics).
  const RobEntry* match = nullptr;
  for (const RobEntry& other : rob_) {
    if (other.op.seq >= e.op.seq) break;
    if (other.op.is_serializing()) return false;
    if (other.op.is_store() && word_of(other.op.mem_addr) == word) {
      match = &other;
    }
  }
  if (match) {
    if (!match->issued || match->complete_at > now) return false;
    *forwarded = true;
    return true;
  }
  // No in-ROB producer: the word may still live in the post-commit store
  // buffer on its way to the cache.
  for (const Addr w : committed_store_words_) {
    if (w == word) {
      *forwarded = true;
      break;
    }
  }
  return true;
}

void OooCore::do_issue(Cycle now) {
  std::uint32_t issued = 0;
  std::uint32_t examined = 0;
  for (RobEntry& e : rob_) {
    if (issued >= config_.issue_width) break;
    if (!e.in_iq) continue;
    // Only entries inside the issue-queue window are candidates.
    if (++examined > config_.iq_entries) break;

    if (!src_ready(e.op.src[0], now, nullptr) ||
        !src_ready(e.op.src[1], now, nullptr)) {
      continue;
    }

    Cycle complete_at = kNever;
    switch (e.op.cls) {
      case isa::InstClass::kSerializing: {
        // Issues only from the ROB head, after everything older retired.
        if (rob_.front().op.seq != e.op.seq) continue;
        complete_at = now + 1;
        break;
      }
      case isa::InstClass::kLoad: {
        bool forwarded = false;
        if (!lsq_load_can_issue(e, now, &forwarded)) continue;
        Cycle port_done = 0;
        if (!try_fu(fu_mem_, now, &port_done)) continue;
        // Address translation precedes the cache access; a D-TLB miss
        // inserts the page-walk latency.
        Cycle start = now;
        if (!dtlb_.access(e.op.mem_addr)) {
          start += config_.tlb_walk_latency;
          ++stats_.dtlb_misses;
        }
        dtlb_.avf_update(now);
        if (forwarded) {
          complete_at = start + config_.store_forward_latency;
        } else {
          complete_at = memory_->load(id_, e.op.mem_addr, start).done;
        }
        complete_at += config_.extra_load_latency;
        break;
      }
      case isa::InstClass::kStore: {
        // Execution = address generation + data capture; the memory write
        // happens at commit through the CommitEnv.
        bool blocked = false;
        for (const RobEntry& other : rob_) {
          if (other.op.seq >= e.op.seq) break;
          if (other.op.is_serializing()) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
        Cycle port_done = 0;
        if (!try_fu(fu_mem_, now, &port_done)) continue;
        complete_at = now + 1;
        if (!dtlb_.access(e.op.mem_addr)) {
          complete_at += config_.tlb_walk_latency;
          ++stats_.dtlb_misses;
        }
        dtlb_.avf_update(now);
        break;
      }
      default: {
        FuPool* pool = pool_for(e.op.cls);
        assert(pool != nullptr);
        if (!try_fu(*pool, now, &complete_at)) continue;
        break;
      }
    }

    e.in_iq = false;
    e.issued = true;
    e.complete_at = complete_at;
    completion_[e.op.seq] = complete_at;
    --iq_count_;
    ++issued;

    // A resolving mispredicted branch un-blocks the front end.
    if (e.op.is_branch() && fetch_blocked_on_ == e.op.seq) {
      fetch_blocked_on_ = kNoSeq;
      fetch_resume_at_ =
          std::max(fetch_resume_at_, complete_at + config_.mispredict_penalty);
    }
  }
}

void OooCore::do_dispatch(Cycle now) {
  const std::uint32_t reserved = env_->reserved_rob_slots(id_, now);
  for (std::uint32_t n = 0; n < config_.fetch_width; ++n) {
    if (fetch_queue_.empty()) break;
    if (rob_.size() + reserved >= config_.rob_entries) {
      ++stats_.dispatch_stall_rob;
      break;
    }
    if (iq_count_ >= config_.iq_entries) {
      ++stats_.dispatch_stall_iq;
      break;
    }
    const workload::DynOp& op = fetch_queue_.front();
    if (op.is_load() && lq_count_ >= config_.lq_entries) {
      ++stats_.dispatch_stall_lsq;
      break;
    }
    if (op.is_store() && sq_count_ >= config_.sq_entries) {
      ++stats_.dispatch_stall_lsq;
      break;
    }

    RobEntry e;
    e.op = op;
    e.mispredicted = op.is_branch() && op.has_mispredict_hint
                         ? op.mispredict_hint
                         : false;
    rob_.push_back(e);
    completion_[op.seq] = kNever;
    ++iq_count_;
    if (op.is_load()) ++lq_count_;
    if (op.is_store()) ++sq_count_;
    fetch_queue_.pop_front();
  }
}

void OooCore::do_fetch(Cycle now) {
  if (fetch_blocked_on_ != kNoSeq) {
    ++stats_.fetch_blocked_branch;
    return;
  }
  if (now < fetch_resume_at_) {
    ++stats_.fetch_blocked_serialize;
    return;
  }
  for (std::uint32_t n = 0; n < config_.fetch_width; ++n) {
    if (fetch_queue_.size() >= config_.fetch_queue_entries) break;

    workload::DynOp op;
    if (pending_stream_op_valid_) {
      op = pending_stream_op_;
      pending_stream_op_valid_ = false;
    } else {
      if (stream_done_ || !stream_->next(&op)) {
        stream_done_ = true;
        break;
      }
    }

    // Front end: translate and fetch the instruction's line. An I-TLB miss
    // or I-cache miss stalls fetch until the walk / fill completes; the op
    // is retried (kept pending) afterwards.
    if (config_.model_frontend) {
      Cycle blocked_until = 0;
      if (!itlb_.access(op.pc)) {
        ++stats_.itlb_misses;
        blocked_until = now + config_.tlb_walk_latency;
      }
      itlb_.avf_update(now);
      const auto fetch_result = memory_->ifetch(id_, op.pc, now);
      if (!fetch_result.l1_hit) {
        blocked_until = std::max(blocked_until, fetch_result.done);
      }
      if (blocked_until > now) {
        ++stats_.fetch_blocked_icache;
        pending_stream_op_ = op;
        pending_stream_op_valid_ = true;
        fetch_resume_at_ = std::max(fetch_resume_at_, blocked_until);
        return;
      }
    }

    if (op.is_branch()) {
      // Resolve the prediction now: hinted streams carry the outcome;
      // recorded traces consult the core's own predictor.
      bool wrong;
      if (op.has_mispredict_hint) {
        wrong = op.mispredict_hint;
        // Keep predictor state warm even in hinted mode (cheap, harmless).
      } else {
        wrong = bpred_.mispredicted(op.pc, op.taken);
        op.has_mispredict_hint = true;
        op.mispredict_hint = wrong;
      }
      fetch_queue_.push_back(op);
      if (tracer_ && tracer_->enabled()) {
        tracer_->emit({.kind = obs::TraceKind::kFetch, .cycle = now,
                       .thread = 0, .core = id_, .seq = op.seq,
                       .addr = op.pc, .value = wrong ? 1u : 0u});
      }
      if (wrong) {
        // The front end chases the wrong path until this branch resolves.
        fetch_blocked_on_ = op.seq;
        return;
      }
      continue;
    }
    fetch_queue_.push_back(op);
    if (tracer_ && tracer_->enabled()) {
      tracer_->emit({.kind = obs::TraceKind::kFetch, .cycle = now,
                     .thread = 0, .core = id_, .seq = op.seq, .addr = op.pc,
                     .value = 0});
    }
  }
}

void publish_core_stats(obs::MetricsRegistry& reg, const std::string& prefix,
                        const CoreStats& s) {
  reg.set_counter(prefix + ".cycles", s.cycles);
  reg.set_counter(prefix + ".commit.committed", s.committed);
  reg.set_counter(prefix + ".commit.loads", s.loads);
  reg.set_counter(prefix + ".commit.stores", s.stores);
  reg.set_counter(prefix + ".commit.branches", s.branches);
  reg.set_counter(prefix + ".commit.mispredicts", s.mispredicts);
  reg.set_counter(prefix + ".commit.serializing", s.serializing);
  reg.set_counter(prefix + ".stall.commit_store", s.commit_stall_store);
  reg.set_counter(prefix + ".stall.commit_gate", s.commit_stall_gate);
  reg.set_counter(prefix + ".stall.dispatch_rob", s.dispatch_stall_rob);
  reg.set_counter(prefix + ".stall.dispatch_iq", s.dispatch_stall_iq);
  reg.set_counter(prefix + ".stall.dispatch_lsq", s.dispatch_stall_lsq);
  reg.set_counter(prefix + ".stall.fetch_branch", s.fetch_blocked_branch);
  reg.set_counter(prefix + ".stall.fetch_serialize", s.fetch_blocked_serialize);
  reg.set_counter(prefix + ".stall.fetch_icache", s.fetch_blocked_icache);
  reg.set_counter(prefix + ".stall.recovery_cycles", s.recovery_stall_cycles);
  reg.set_counter(prefix + ".tlb.itlb_misses", s.itlb_misses);
  reg.set_counter(prefix + ".tlb.dtlb_misses", s.dtlb_misses);
  reg.observe(prefix + ".ipc", s.ipc());
  reg.observe(prefix + ".rob.avg_occupancy", s.avg_rob_occupancy());
}

}  // namespace unsync::cpu
