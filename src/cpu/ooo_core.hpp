// Out-of-order core timing model.
//
// A cycle-stepped model of a 4-wide out-of-order core (Table I): fetch
// queue, ROB, issue queue with oldest-first select, split load/store queue
// with store-to-load forwarding, functional-unit pools, gshare branch
// prediction, and serializing-instruction drain semantics.
//
// The model is trace/stream-driven: it consumes retired-order DynOps, so
// wrong-path work is modelled as fetch bubbles (the front end stalls from
// the fetch of a mispredicted branch until it resolves plus the refill
// penalty) rather than by simulating wrong-path instructions. This is the
// standard trace-driven treatment and captures the first-order cost.
//
// The redundancy architectures (src/core) hook the commit stage through
// CommitEnv: gating commit (Reunion fingerprint verification), intercepting
// stores (CB / store buffer), and reserving ROB slots for
// committed-but-unverified instructions (Reunion CHECK-stage pressure).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "cpu/bpred.hpp"
#include "cpu/core_config.hpp"
#include "mem/hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::cpu {

/// Commit-stage hooks supplied by the system wrapper (baseline / UnSync /
/// Reunion). Default implementations are pass-through.
class CommitEnv {
 public:
  virtual ~CommitEnv() = default;

  /// May `op` commit at `now`? Returning false stalls the commit stage.
  virtual bool can_commit(CoreId core, const workload::DynOp& op, Cycle now) {
    (void)core; (void)op; (void)now;
    return true;
  }

  /// A store is leaving the core at commit. Return false to reject it
  /// (downstream buffer full) — the commit stage stalls and retries.
  virtual bool on_store_commit(CoreId core, const workload::DynOp& op,
                               Cycle now) {
    (void)core; (void)op; (void)now;
    return true;
  }

  /// Called once per committed instruction (after acceptance).
  virtual void on_commit(CoreId core, const workload::DynOp& op, Cycle now) {
    (void)core; (void)op; (void)now;
  }

  /// ROB slots currently held by already-committed instructions (Reunion:
  /// committed but fingerprint-unverified). Shrinks effective ROB capacity.
  virtual std::uint32_t reserved_rob_slots(CoreId core, Cycle now) {
    (void)core; (void)now;
    return 0;
  }

  /// Side-effect-free view of reserved_rob_slots for fast-forward planning:
  /// must return the value reserved_rob_slots(core, now) WOULD return,
  /// without mutating any environment state. Used by OooCore::next_event.
  virtual std::uint32_t reserved_rob_slots_at(CoreId core, Cycle now) const {
    (void)core; (void)now;
    return 0;
  }

  /// The next cycle > now at which this environment's reserved_rob_slots
  /// value can change without any core acting (Reunion: the earliest
  /// pending fingerprint verification). Bounds ROB-stalled fast-forward
  /// windows; ~Cycle{0} = never.
  virtual Cycle next_state_change(CoreId core, Cycle now) const {
    (void)core; (void)now;
    return ~Cycle{0};
  }
};

struct CoreStats {
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t serializing = 0;

  // Stall / pressure accounting (cycle-granularity event counts).
  std::uint64_t commit_stall_store = 0;   ///< store rejected downstream
  std::uint64_t commit_stall_gate = 0;    ///< CommitEnv::can_commit == false
  std::uint64_t dispatch_stall_rob = 0;
  std::uint64_t dispatch_stall_iq = 0;
  std::uint64_t dispatch_stall_lsq = 0;
  std::uint64_t fetch_blocked_branch = 0;
  std::uint64_t fetch_blocked_serialize = 0;
  std::uint64_t fetch_blocked_icache = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t recovery_stall_cycles = 0;  ///< externally injected stalls

  std::uint64_t rob_occupancy_accum = 0;  ///< sum over cycles (avg = /cycles)

  /// Committed-instruction counts sampled every CoreConfig::sample_interval
  /// cycles (empty when sampling is off). Interval IPC between samples i-1
  /// and i is (c[i]-c[i-1]) / interval.
  std::vector<std::uint64_t> interval_committed;

  double ipc() const {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles)
                  : 0.0;
  }
  double avg_rob_occupancy() const {
    return cycles ? static_cast<double>(rob_occupancy_accum) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Checkpoint helpers: serialise / restore a CoreStats block (all fields,
/// including the interval-IPC samples). Also used by the system layer to
/// persist RunResult::core_stats.
void save_stats(ckpt::Serializer& s, const CoreStats& stats);
void load_stats(ckpt::Deserializer& d, CoreStats& stats);

class OooCore {
 public:
  OooCore(CoreId id, const CoreConfig& config, mem::MemoryHierarchy* memory,
          std::unique_ptr<workload::InstStream> stream,
          CommitEnv* env = nullptr);

  CoreId id() const { return id_; }
  const CoreConfig& config() const { return config_; }

  /// Advances the core by one clock cycle.
  void tick(Cycle now);

  /// Quiescence fast-forwarding (docs/ENGINE.md): a conservative lower
  /// bound on the next cycle at which this core can change state.
  /// Returning `now` vetoes skipping — some stage may act this cycle.
  /// Returning T > now guarantees every tick in [now, T) is static: no
  /// commit, issue, dispatch or fetch occurs, and the only effects are the
  /// deterministic per-cycle counters that skip_cycles() replays.
  Cycle next_event(Cycle now) const;

  /// Replays the per-cycle bookkeeping of the static window [from, to)
  /// that next_event() promised, in closed form: cycle/occupancy counters,
  /// ROB-histogram samples, interval-IPC samples and the one stall counter
  /// the window's stable stall reason increments. Bit-identical to calling
  /// tick() to-from times across a static window.
  void skip_cycles(Cycle from, Cycle to);

  /// True when the stream is exhausted and the pipeline has drained.
  bool done() const;

  /// Number of instructions architecturally committed so far.
  SeqNum retired() const { return stats_.committed; }

  /// Externally freezes the core (error recovery): no pipeline activity
  /// until `cycle`. Repeated calls keep the later deadline.
  void stall_until(Cycle cycle);

  /// Flushes all in-flight (uncommitted) work — recovery step 2, "the
  /// pipeline of the erroneous core is flushed".
  void flush_pipeline();

  /// Repositions the architectural stream cursor so the next instruction to
  /// enter the pipeline is `seq` (UnSync recovery: both cores resume from
  /// the error-free core's position, the slower core is forwarded, a
  /// faster erroneous core re-traces). Implies flush_pipeline().
  void set_position(SeqNum seq);

  const CoreStats& stats() const { return stats_; }
  std::uint32_t rob_occupancy() const {
    return static_cast<std::uint32_t>(rob_.size());
  }

  /// Attaches an event-trace gate. The core emits kFetch and kCommit
  /// records through it; a gate with no sink costs one branch per event
  /// site, so leaving this attached permanently is free.
  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches a per-cycle ROB-occupancy histogram (the Figure 5 metric).
  /// Sampling is one Histogram::add per cycle while attached; pass nullptr
  /// to detach.
  void set_rob_histogram(Histogram* hist) { rob_hist_ = hist; }

  /// Attaches ACE residency trackers (fault/avf.hpp) to the core's TLBs;
  /// valid-entry occupancy is integrated at each translation site. Like the
  /// tracer, detached trackers cost one branch per site.
  void set_tlb_avf(fault::ResidencyTracker* itlb, fault::ResidencyTracker* dtlb) {
    itlb_.set_avf(itlb);
    dtlb_.set_avf(dtlb);
  }

  const mem::Tlb& itlb() const { return itlb_; }
  const mem::Tlb& dtlb() const { return dtlb_; }

  GsharePredictor& predictor() { return bpred_; }

  /// Checkpoint hooks: the complete per-core mutable state — fetch queue,
  /// ROB, in-flight producer completions, predictor, TLBs, FU reservations,
  /// front-end cursor (including the stream's own state), LSQ occupancy,
  /// the committed-store forwarding window, and statistics. load_state()
  /// requires a core constructed with the same id, config and stream
  /// identity. Observability attachments are not part of the state.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  static constexpr Cycle kNever = ~Cycle{0};

  struct RobEntry {
    workload::DynOp op;
    bool in_iq = true;      // waiting to issue
    bool issued = false;
    Cycle complete_at = kNever;
    bool mispredicted = false;  // resolved at dispatch (hint or predictor)
  };

  struct FuPool {
    FuPoolConfig cfg;
    std::vector<Cycle> next_free;
  };

  void do_commit(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);
  void do_fetch(Cycle now);

  bool src_ready(SeqNum src, Cycle now, Cycle* ready_at) const;
  FuPool* pool_for(isa::InstClass cls);
  /// Earliest cycle >= now a unit in `pool` is free; kNever if none this
  /// cycle. On success reserves the unit and returns completion time.
  bool try_fu(FuPool& pool, Cycle now, Cycle* complete_at);

  bool lsq_load_can_issue(const RobEntry& e, Cycle now, bool* forwarded) const;

  /// Fast-forward helper for a load whose sources are ready: `now` = the
  /// load could attempt issue this cycle (veto), kNever = its blocker
  /// clears only via an event next_event already covers, otherwise the
  /// cycle the blocking older store completes.
  Cycle load_block_bound(const RobEntry& e, Cycle now) const;

  CoreId id_;
  CoreConfig config_;
  mem::MemoryHierarchy* memory_;
  std::unique_ptr<workload::InstStream> stream_;
  CommitEnv* env_;
  CommitEnv default_env_;

  std::deque<workload::DynOp> fetch_queue_;
  std::deque<RobEntry> rob_;
  std::unordered_map<SeqNum, Cycle> completion_;  // in-flight producers

  GsharePredictor bpred_;
  mem::Tlb itlb_;
  mem::Tlb dtlb_;

  FuPool fu_int_alu_, fu_int_mul_, fu_int_div_;
  FuPool fu_fp_alu_, fu_fp_mul_, fu_fp_div_;
  FuPool fu_mem_;

  // Front-end state.
  bool stream_done_ = false;
  SeqNum fetch_blocked_on_ = kNoSeq;  // branch seq gating fetch
  Cycle fetch_resume_at_ = 0;
  bool pending_stream_op_valid_ = false;
  workload::DynOp pending_stream_op_{};

  // In-flight queue occupancy.
  std::uint32_t iq_count_ = 0;
  std::uint32_t lq_count_ = 0;
  std::uint32_t sq_count_ = 0;

  /// Post-commit store buffer view: recently committed store words still
  /// capable of forwarding to younger loads (the data has left the ROB but
  /// not necessarily reached the cache).
  std::deque<Addr> committed_store_words_;

  Cycle frozen_until_ = 0;
  Cycle next_sample_ = 0;
  CoreStats stats_;

  // Observability (both optional; null = off, one branch per site).
  const obs::Tracer* tracer_ = nullptr;
  Histogram* rob_hist_ = nullptr;
};

/// Publishes one core's counters and gauges into `reg` under `prefix`
/// (e.g. "unsync.group0.core1"): the registry-side view of CoreStats.
void publish_core_stats(obs::MetricsRegistry& reg, const std::string& prefix,
                        const CoreStats& stats);

}  // namespace unsync::cpu
