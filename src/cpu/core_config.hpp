// Core microarchitecture parameters (defaults per Table I: 4-wide
// fetch/issue/commit out-of-order core, 64-entry issue queue, 2 GHz,
// 5-stage pipeline, Alpha-21264-class resources).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "mem/tlb.hpp"

namespace unsync::cpu {

struct FuPoolConfig {
  std::uint32_t count = 1;
  Cycle latency = 1;
  bool pipelined = true;
};

struct CoreConfig {
  std::uint32_t fetch_width = 4;
  std::uint32_t issue_width = 4;
  std::uint32_t commit_width = 4;

  std::uint32_t rob_entries = 80;  // Alpha-21264-class window
  std::uint32_t iq_entries = 64;   // Table I: Issue Queue 64
  std::uint32_t lq_entries = 32;
  std::uint32_t sq_entries = 32;
  std::uint32_t fetch_queue_entries = 16;

  /// Front-end refill penalty after a branch misprediction, and the drain
  /// penalty a serializing instruction imposes on the fetch stage.
  Cycle mispredict_penalty = 8;
  Cycle serialize_fetch_penalty = 5;

  /// Store-to-load forwarding latency from the store queue.
  Cycle store_forward_latency = 1;

  /// Extra cycles added to every load's completion — used by the lockstep
  /// related-work model, where load values pass through the input
  /// replication checker before either core may consume them (§II).
  Cycle extra_load_latency = 0;

  /// TLBs (Table I: I-TLB 48 entries 2-way, D-TLB 64 entries 2-way) and the
  /// page-walk latency charged on a miss. `model_frontend` also enables the
  /// split I-cache in the fetch stage.
  mem::TlbConfig itlb{.entries = 48, .assoc = 2, .page_bits = 12};
  mem::TlbConfig dtlb{.entries = 64, .assoc = 2, .page_bits = 12};
  Cycle tlb_walk_latency = 30;
  bool model_frontend = true;

  /// When non-zero, the core records its committed-instruction count every
  /// `sample_interval` cycles (phase/IPC-over-time diagnostics in
  /// CoreStats::interval_committed).
  Cycle sample_interval = 0;

  FuPoolConfig int_alu{.count = 4, .latency = 1, .pipelined = true};
  FuPoolConfig int_mul{.count = 1, .latency = 4, .pipelined = true};
  FuPoolConfig int_div{.count = 1, .latency = 20, .pipelined = false};
  FuPoolConfig fp_alu{.count = 2, .latency = 4, .pipelined = true};
  FuPoolConfig fp_mul{.count = 1, .latency = 6, .pipelined = true};
  FuPoolConfig fp_div{.count = 1, .latency = 24, .pipelined = false};
  /// Cache ports shared by loads and stores.
  FuPoolConfig mem_port{.count = 2, .latency = 1, .pipelined = true};
};

}  // namespace unsync::cpu
