#include "cpu/bpred.hpp"

namespace unsync::cpu {

GsharePredictor::GsharePredictor(unsigned table_bits)
    : bits_(table_bits), counters_(std::size_t{1} << table_bits, 2) {}

std::size_t GsharePredictor::index(Addr pc) const {
  const std::uint64_t mask = (std::uint64_t{1} << bits_) - 1;
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & mask);
}

bool GsharePredictor::predict(Addr pc) const {
  return counters_[index(pc)] >= 2;
}

void GsharePredictor::update(Addr pc, bool taken) {
  std::uint8_t& c = counters_[index(pc)];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
  const std::uint64_t mask = (std::uint64_t{1} << bits_) - 1;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;
}

bool GsharePredictor::mispredicted(Addr pc, bool taken) {
  ++lookups_;
  const bool wrong = predict(pc) != taken;
  update(pc, taken);
  if (wrong) ++wrong_;
  return wrong;
}

}  // namespace unsync::cpu
