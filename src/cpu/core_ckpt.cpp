// Checkpoint hooks for the CPU layer: branch predictor, CoreStats blocks,
// and the full out-of-order core. One translation unit so the core's wire
// layout is reviewable in a single place.
#include <algorithm>

#include "ckpt/serializer.hpp"
#include "cpu/bpred.hpp"
#include "cpu/check_log.hpp"
#include "cpu/in_order_core.hpp"
#include "cpu/ooo_core.hpp"

namespace unsync::cpu {

void GsharePredictor::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("BPRD");
  s.u64(counters_.size());
  for (const std::uint8_t c : counters_) s.u8(c);
  s.u64(history_);
  s.u64(lookups_);
  s.u64(wrong_);
  s.end_chunk();
}

void GsharePredictor::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("BPRD");
  if (d.u64() != counters_.size()) {
    throw ckpt::CkptError("branch predictor table-size mismatch");
  }
  for (std::uint8_t& c : counters_) c = d.u8();
  history_ = d.u64();
  lookups_ = d.u64();
  wrong_ = d.u64();
  d.end_chunk();
}

void save_stats(ckpt::Serializer& s, const CoreStats& stats) {
  s.begin_chunk("CSTA");
  s.u64(stats.cycles);
  s.u64(stats.committed);
  s.u64(stats.loads);
  s.u64(stats.stores);
  s.u64(stats.branches);
  s.u64(stats.mispredicts);
  s.u64(stats.serializing);
  s.u64(stats.commit_stall_store);
  s.u64(stats.commit_stall_gate);
  s.u64(stats.dispatch_stall_rob);
  s.u64(stats.dispatch_stall_iq);
  s.u64(stats.dispatch_stall_lsq);
  s.u64(stats.fetch_blocked_branch);
  s.u64(stats.fetch_blocked_serialize);
  s.u64(stats.fetch_blocked_icache);
  s.u64(stats.itlb_misses);
  s.u64(stats.dtlb_misses);
  s.u64(stats.recovery_stall_cycles);
  s.u64(stats.rob_occupancy_accum);
  ckpt::save_u64_vec(s, stats.interval_committed);
  s.end_chunk();
}

void load_stats(ckpt::Deserializer& d, CoreStats& stats) {
  d.begin_chunk("CSTA");
  stats.cycles = d.u64();
  stats.committed = d.u64();
  stats.loads = d.u64();
  stats.stores = d.u64();
  stats.branches = d.u64();
  stats.mispredicts = d.u64();
  stats.serializing = d.u64();
  stats.commit_stall_store = d.u64();
  stats.commit_stall_gate = d.u64();
  stats.dispatch_stall_rob = d.u64();
  stats.dispatch_stall_iq = d.u64();
  stats.dispatch_stall_lsq = d.u64();
  stats.fetch_blocked_branch = d.u64();
  stats.fetch_blocked_serialize = d.u64();
  stats.fetch_blocked_icache = d.u64();
  stats.itlb_misses = d.u64();
  stats.dtlb_misses = d.u64();
  stats.recovery_stall_cycles = d.u64();
  stats.rob_occupancy_accum = d.u64();
  ckpt::load_u64_vec(d, stats.interval_committed);
  d.end_chunk();
}

namespace {

void save_pool(ckpt::Serializer& s, const std::vector<Cycle>& next_free) {
  s.u64(next_free.size());
  for (const Cycle c : next_free) s.u64(c);
}

void load_pool(ckpt::Deserializer& d, std::vector<Cycle>& next_free) {
  if (d.u64() != next_free.size()) {
    throw ckpt::CkptError("functional-unit pool width mismatch");
  }
  for (Cycle& c : next_free) c = d.u64();
}

}  // namespace

void OooCore::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("CPU0");
  s.u32(id_);
  save_stats(s, stats_);
  s.u64(next_sample_);
  s.u64(frozen_until_);

  s.u64(fetch_queue_.size());
  for (const workload::DynOp& op : fetch_queue_) workload::save_op(s, op);

  s.u64(rob_.size());
  for (const RobEntry& e : rob_) {
    workload::save_op(s, e.op);
    s.b(e.in_iq);
    s.b(e.issued);
    s.u64(e.complete_at);
    s.b(e.mispredicted);
  }

  // unordered_map: saved sorted by key so identical state always produces
  // identical bytes (save -> load -> save round-trips are byte-comparable).
  std::vector<std::pair<SeqNum, Cycle>> completions(completion_.begin(),
                                                    completion_.end());
  std::sort(completions.begin(), completions.end());
  s.u64(completions.size());
  for (const auto& [seq, at] : completions) {
    s.u64(seq);
    s.u64(at);
  }

  bpred_.save_state(s);
  itlb_.save_state(s);
  dtlb_.save_state(s);

  save_pool(s, fu_int_alu_.next_free);
  save_pool(s, fu_int_mul_.next_free);
  save_pool(s, fu_int_div_.next_free);
  save_pool(s, fu_fp_alu_.next_free);
  save_pool(s, fu_fp_mul_.next_free);
  save_pool(s, fu_fp_div_.next_free);
  save_pool(s, fu_mem_.next_free);

  stream_->save_state(s);
  s.b(stream_done_);
  s.u64(fetch_blocked_on_);
  s.u64(fetch_resume_at_);
  s.b(pending_stream_op_valid_);
  workload::save_op(s, pending_stream_op_);

  s.u32(iq_count_);
  s.u32(lq_count_);
  s.u32(sq_count_);

  s.u64(committed_store_words_.size());
  for (const Addr a : committed_store_words_) s.u64(a);
  s.end_chunk();
}

void OooCore::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("CPU0");
  if (d.u32() != id_) {
    throw ckpt::CkptError("core id mismatch");
  }
  load_stats(d, stats_);
  next_sample_ = d.u64();
  frozen_until_ = d.u64();

  fetch_queue_.resize(d.u64());
  for (workload::DynOp& op : fetch_queue_) workload::load_op(d, op);

  rob_.resize(d.u64());
  for (RobEntry& e : rob_) {
    workload::load_op(d, e.op);
    e.in_iq = d.b();
    e.issued = d.b();
    e.complete_at = d.u64();
    e.mispredicted = d.b();
  }

  completion_.clear();
  const std::uint64_t n_completions = d.u64();
  for (std::uint64_t i = 0; i < n_completions; ++i) {
    const SeqNum seq = d.u64();
    completion_[seq] = d.u64();
  }

  bpred_.load_state(d);
  itlb_.load_state(d);
  dtlb_.load_state(d);

  load_pool(d, fu_int_alu_.next_free);
  load_pool(d, fu_int_mul_.next_free);
  load_pool(d, fu_int_div_.next_free);
  load_pool(d, fu_fp_alu_.next_free);
  load_pool(d, fu_fp_mul_.next_free);
  load_pool(d, fu_fp_div_.next_free);
  load_pool(d, fu_mem_.next_free);

  stream_->load_state(d);
  stream_done_ = d.b();
  fetch_blocked_on_ = d.u64();
  fetch_resume_at_ = d.u64();
  pending_stream_op_valid_ = d.b();
  workload::load_op(d, pending_stream_op_);

  iq_count_ = d.u32();
  lq_count_ = d.u32();
  sq_count_ = d.u32();

  committed_store_words_.resize(d.u64());
  for (Addr& a : committed_store_words_) a = d.u64();
  d.end_chunk();
}

void InOrderCore::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("IOC0");
  s.u32(id_);
  save_stats(s, stats_);
  s.u64(next_sample_);
  s.u64(frozen_until_);
  stream_->save_state(s);
  s.b(stream_done_);
  s.b(op_valid_);
  workload::save_op(s, op_);
  s.b(started_);
  s.u64(complete_at_);
  s.end_chunk();
}

void InOrderCore::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("IOC0");
  if (d.u32() != id_) {
    throw ckpt::CkptError("in-order core id mismatch");
  }
  load_stats(d, stats_);
  next_sample_ = d.u64();
  frozen_until_ = d.u64();
  stream_->load_state(d);
  stream_done_ = d.b();
  op_valid_ = d.b();
  workload::load_op(d, op_);
  started_ = d.b();
  complete_at_ = d.u64();
  d.end_chunk();
}

void CheckLog::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("CLOG");
  s.u64(capacity_);
  s.u64(entries_.size());
  for (const CheckLogEntry& e : entries_) {
    s.u64(e.seq);
    s.u64(e.addr);
    s.u8(static_cast<std::uint8_t>(e.kind));
    s.b(e.taken);
  }
  s.u64(peak_);
  s.u64(total_pushed_);
  s.end_chunk();
}

void CheckLog::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("CLOG");
  if (d.u64() != capacity_) {
    throw ckpt::CkptError("check-log capacity mismatch");
  }
  entries_.resize(d.u64());
  if (entries_.size() > capacity_) {
    throw ckpt::CkptError("check-log over capacity");
  }
  for (CheckLogEntry& e : entries_) {
    e.seq = d.u64();
    e.addr = d.u64();
    e.kind = static_cast<CheckKind>(d.u8());
    e.taken = d.b();
  }
  peak_ = d.u64();
  total_pushed_ = d.u64();
  d.end_chunk();
}

}  // namespace unsync::cpu
