// Bounded leader→checker verification log (MEEK/DIVA-style heterogeneous
// redundancy, cf. paper §II's discussion of partial-redundancy checkers).
//
// The leading (big) core appends one entry per committed instruction whose
// result the trailing checker must reproduce: load values, branch outcomes
// and store address/data. The checker consumes entries strictly in order at
// its own commit stage and compares. The log is the ONLY coupling between
// the two cores — it plays the role the Communication Buffer plays for
// UnSync, and like the CB it is a real SRAM structure: bounded (a full log
// stalls the leader's commit stage), checkpointable, a fault-injection
// target (fault/injector.hpp kCheckLogEntry) and an ACE residency site.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>

#include "common/types.hpp"
#include "fault/avf.hpp"
#include "obs/metrics.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::cpu {

/// What the entry carries for the checker to compare.
enum class CheckKind : std::uint8_t {
  kLoadValue = 0,      ///< load data forwarded to the checker
  kBranchOutcome = 1,  ///< resolved direction
  kStoreData = 2,      ///< store address + data, released on verification
};

struct CheckLogEntry {
  SeqNum seq = 0;      ///< committing instruction on the leader
  Addr addr = kNoAddr; ///< effective address (loads/stores)
  CheckKind kind = CheckKind::kLoadValue;
  bool taken = false;  ///< branch outcome payload
};

/// Bits one entry occupies (address + data word + tag/kind), used by the
/// ACE analysis to convert entry·cycles into bit·cycles.
inline constexpr std::uint64_t kCheckLogEntryBits = 160;

class CheckLog {
 public:
  explicit CheckLog(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= capacity_; }

  /// Leader side: appends at commit; returns false (and changes nothing)
  /// when full — the leader's commit stage stalls.
  bool push(const CheckLogEntry& e) {
    if (full()) return false;
    entries_.push_back(e);
    peak_ = entries_.size() > peak_ ? entries_.size() : peak_;
    ++total_pushed_;
    return true;
  }

  /// Checker side: strictly in-order consumption.
  const CheckLogEntry& front() const {
    assert(!empty());
    return entries_.front();
  }
  void pop() {
    assert(!empty());
    entries_.pop_front();
  }

  /// Error recovery: the log between the verified watermark and the
  /// leader's head is unverified work — discarded wholesale on rollback.
  void clear() { entries_.clear(); }

  std::size_t peak_occupancy() const { return peak_; }
  std::uint64_t total_pushed() const { return total_pushed_; }

  /// ACE residency hook (fault/avf.hpp): every resident entry is
  /// architecturally critical until the checker consumes it (unverified
  /// stores have not reached memory; load values are the checker's inputs).
  /// The owning system calls avf_update(now) at its append/consume sites.
  void set_avf(fault::ResidencyTracker* avf) { avf_ = avf; }
  void avf_update(Cycle now) {
    if (avf_) avf_->set_live(now, entries_.size());
  }

  /// Checkpoint hooks: entries plus occupancy counters. Capacity must match
  /// the saved instance. Defined in core_ckpt.cpp with the other cpu hooks.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  std::size_t capacity_;
  std::deque<CheckLogEntry> entries_;
  std::size_t peak_ = 0;
  std::uint64_t total_pushed_ = 0;
  fault::ResidencyTracker* avf_ = nullptr;  // observability; not checkpointed
};

/// Publishes a check log's occupancy counters into `reg` under `prefix`
/// (e.g. "hetero.group0.log").
inline void publish_check_log(obs::MetricsRegistry& reg,
                              const std::string& prefix, const CheckLog& log) {
  reg.set_counter(prefix + ".capacity", log.capacity());
  reg.set_counter(prefix + ".peak_occupancy", log.peak_occupancy());
  reg.set_counter(prefix + ".total_pushed", log.total_pushed());
}

}  // namespace unsync::cpu
