// In-order checker-core timing model.
//
// A deliberately small core: scalar-class in-order pipeline with no rename,
// no ROB and blocking execution — the head instruction executes to
// completion before the next may start, and up to `width` single-cycle
// instructions retire per cycle once their turn comes. This is the MEEK /
// DIVA checker-core shape: a core an order of magnitude simpler than the
// leader it shadows, cheap enough that strapping one to every big core is a
// plausible area budget.
//
// The model reuses the OooCore ecosystem wholesale: the same DynOp streams,
// the same CommitEnv commit hooks (which is how the heterogeneous system
// feeds it verified inputs from the CheckLog), the same CoreStats block and
// the same tick / next_event / skip_cycles quiescence contract, so the
// SimKernel drives a leader + checker group exactly like a pair of big
// cores. In-order interpretation of the shared stall counters:
// dispatch_stall_iq counts head-instruction execution-wait cycles (there is
// no issue queue), commit_stall_gate / commit_stall_store keep their
// meanings, and the ROB-occupancy fields stay zero.
#pragma once

#include <cstdint>
#include <memory>

#include "cpu/core_config.hpp"
#include "cpu/ooo_core.hpp"
#include "mem/hierarchy.hpp"
#include "obs/trace.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::cpu {

struct InOrderConfig {
  /// Instructions retired per cycle once the head is complete (classic
  /// checker designs retire a small batch per cycle to keep pace with the
  /// leader's average IPC despite the simpler pipeline).
  std::uint32_t width = 2;

  /// Fixed load-to-use latency when the core runs without a memory
  /// hierarchy (checker mode: load values arrive pre-verified from the
  /// CheckLog, so no cache is accessed). With a hierarchy attached, loads
  /// instead block until the access completes (blocking-miss).
  Cycle load_latency = 1;

  /// Execution latencies by class (no structural hazards beyond the
  /// blocking head instruction, so these are pure latencies).
  Cycle int_mul_latency = 4;
  Cycle int_div_latency = 20;
  Cycle fp_alu_latency = 4;
  Cycle fp_mul_latency = 6;
  Cycle fp_div_latency = 24;
  /// In-order pipelines still drain on serializing instructions.
  Cycle serialize_latency = 3;

  /// Same interval-IPC sampling knob as CoreConfig::sample_interval.
  Cycle sample_interval = 0;
};

class InOrderCore {
 public:
  /// `memory` may be null: checker mode, loads complete at load_latency.
  InOrderCore(CoreId id, const InOrderConfig& config,
              mem::MemoryHierarchy* memory,
              std::unique_ptr<workload::InstStream> stream,
              CommitEnv* env = nullptr);

  CoreId id() const { return id_; }
  const InOrderConfig& config() const { return config_; }

  void tick(Cycle now);

  /// Quiescence fast-forwarding, same contract as OooCore::next_event: a
  /// return of T > now guarantees every tick in [now, T) only advances the
  /// deterministic per-cycle counters skip_cycles() replays. The in-order
  /// model vetoes (returns now) whenever the head instruction could start,
  /// commit, or charge a commit-gate stall — the owning system is expected
  /// to widen gate-stalled windows itself (it knows when the gate can
  /// open); see HeteroCheckerSystem::next_event.
  Cycle next_event(Cycle now) const;

  /// Replays the static window [from, to). Windows containing commit-gate
  /// or store-reject stalls are only replayable when the environment's
  /// can_commit / on_store_commit are idempotent while blocked (true for
  /// the CheckLog environments: a blocked probe mutates nothing).
  void skip_cycles(Cycle from, Cycle to);

  bool done() const { return stream_done_ && !op_valid_; }
  SeqNum retired() const { return stats_.committed; }

  void stall_until(Cycle cycle) {
    frozen_until_ = frozen_until_ > cycle ? frozen_until_ : cycle;
  }

  /// Squashes the (single) in-flight instruction; it will re-execute.
  void flush_pipeline();

  /// Repositions the stream cursor so the next instruction to execute is
  /// `seq` (rollback recovery). Implies flush_pipeline().
  void set_position(SeqNum seq);

  const CoreStats& stats() const { return stats_; }

  /// Head-of-pipeline views for the owning system's fast-forward planning:
  /// the sequence number the core will commit next (kNoSeq when drained)
  /// and whether its execution has completed (i.e. only the commit gate can
  /// be holding it).
  SeqNum head_seq() const { return op_valid_ ? op_.seq : kNoSeq; }
  const workload::DynOp* head_op() const { return op_valid_ ? &op_ : nullptr; }
  bool head_exec_done(Cycle now) const {
    return op_valid_ && started_ && complete_at_ <= now;
  }

  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }

  /// Checkpoint hooks: cursor + in-flight instruction + statistics.
  /// Defined in core_ckpt.cpp with the other cpu wire layouts.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  static constexpr Cycle kNever = ~Cycle{0};

  Cycle exec_latency(const workload::DynOp& op, Cycle now) const;
  /// Eager-fetch invariant: op_valid_ || stream_done_ — the head slot is
  /// refilled immediately after each commit so head_seq() is always
  /// meaningful to the owning system.
  void refill_head();
  void end_cycle(Cycle now);

  CoreId id_;
  InOrderConfig config_;
  mem::MemoryHierarchy* memory_;
  std::unique_ptr<workload::InstStream> stream_;
  CommitEnv* env_;
  CommitEnv default_env_;

  bool stream_done_ = false;
  bool op_valid_ = false;
  workload::DynOp op_{};
  bool started_ = false;
  Cycle complete_at_ = 0;

  Cycle frozen_until_ = 0;
  Cycle next_sample_ = 0;
  CoreStats stats_;

  const obs::Tracer* tracer_ = nullptr;
};

}  // namespace unsync::cpu
