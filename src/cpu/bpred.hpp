// Gshare branch predictor.
//
// Used when a workload stream does not carry misprediction hints (recorded
// URISC traces): the core predicts from (pc, outcome history) and charges
// the refill penalty itself on a wrong prediction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::cpu {

class GsharePredictor {
 public:
  /// `table_bits` counters of 2 bits each; history length equals table_bits.
  explicit GsharePredictor(unsigned table_bits = 12);

  bool predict(Addr pc) const;

  /// Updates the counter and the global history with the real outcome.
  void update(Addr pc, bool taken);

  /// Convenience: predict, update, and report whether it was wrong.
  bool mispredicted(Addr pc, bool taken);

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t wrong() const { return wrong_; }
  double mispredict_rate() const {
    return lookups_ ? static_cast<double>(wrong_) / static_cast<double>(lookups_)
                    : 0.0;
  }

  /// Checkpoint hooks: counter table, global history, and statistics.
  /// Table size must match the saved instance.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  std::size_t index(Addr pc) const;

  unsigned bits_;
  std::vector<std::uint8_t> counters_;  // 2-bit saturating, init weakly taken
  std::uint64_t history_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t wrong_ = 0;
};

}  // namespace unsync::cpu
