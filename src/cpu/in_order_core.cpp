#include "cpu/in_order_core.hpp"

#include <cassert>

namespace unsync::cpu {

InOrderCore::InOrderCore(CoreId id, const InOrderConfig& config,
                         mem::MemoryHierarchy* memory,
                         std::unique_ptr<workload::InstStream> stream,
                         CommitEnv* env)
    : id_(id),
      config_(config),
      memory_(memory),
      stream_(std::move(stream)),
      env_(env ? env : &default_env_) {
  assert(stream_ != nullptr);
  assert(config_.width > 0);
  refill_head();
}

void InOrderCore::refill_head() {
  if (op_valid_ || stream_done_) return;
  if (stream_->next(&op_)) {
    op_valid_ = true;
    started_ = false;
  } else {
    stream_done_ = true;
  }
}

Cycle InOrderCore::exec_latency(const workload::DynOp& op, Cycle now) const {
  using isa::InstClass;
  switch (op.cls) {
    case InstClass::kIntMul: return now + config_.int_mul_latency - 1;
    case InstClass::kIntDiv: return now + config_.int_div_latency - 1;
    case InstClass::kFpAlu: return now + config_.fp_alu_latency - 1;
    case InstClass::kFpMul: return now + config_.fp_mul_latency - 1;
    case InstClass::kFpDiv: return now + config_.fp_div_latency - 1;
    case InstClass::kSerializing:
      return now + config_.serialize_latency - 1;
    case InstClass::kLoad:
      if (memory_) return memory_->load(id_, op.mem_addr, now).done;
      return now + config_.load_latency - 1;
    default:
      return now;  // ALU / branch / store: single cycle
  }
}

void InOrderCore::flush_pipeline() {
  // Only the head instruction is ever in flight; squash its execution but
  // keep the op — re-execution starts from scratch.
  started_ = false;
  complete_at_ = 0;
}

void InOrderCore::set_position(SeqNum seq) {
  stats_.committed = seq;
  op_valid_ = false;
  started_ = false;
  complete_at_ = 0;
  stream_->reset();
  stream_done_ = false;
  workload::DynOp tmp;
  for (SeqNum i = 0; i < seq; ++i) {
    if (!stream_->next(&tmp)) {
      stream_done_ = true;
      break;
    }
  }
  refill_head();
}

void InOrderCore::end_cycle(Cycle now) {
  ++stats_.cycles;
  if (config_.sample_interval != 0 && now >= next_sample_) {
    stats_.interval_committed.push_back(stats_.committed);
    next_sample_ = now + config_.sample_interval;
  }
}

void InOrderCore::tick(Cycle now) {
  end_cycle(now);

  if (now < frozen_until_) {
    ++stats_.recovery_stall_cycles;
    return;
  }

  for (std::uint32_t n = 0; n < config_.width; ++n) {
    refill_head();
    if (!op_valid_) break;

    if (!started_) {
      started_ = true;
      complete_at_ = exec_latency(op_, now);
    }
    if (complete_at_ > now) {
      ++stats_.dispatch_stall_iq;  // head executing (see header note)
      break;
    }

    if (!env_->can_commit(id_, op_, now)) {
      ++stats_.commit_stall_gate;
      break;
    }
    if (op_.is_store() && !env_->on_store_commit(id_, op_, now)) {
      ++stats_.commit_stall_store;
      break;
    }

    switch (op_.cls) {
      case isa::InstClass::kLoad: ++stats_.loads; break;
      case isa::InstClass::kStore: ++stats_.stores; break;
      case isa::InstClass::kBranch:
        ++stats_.branches;
        if (op_.has_mispredict_hint && op_.mispredict_hint) {
          ++stats_.mispredicts;
        }
        break;
      case isa::InstClass::kSerializing: ++stats_.serializing; break;
      default: break;
    }

    env_->on_commit(id_, op_, now);
    if (tracer_ && tracer_->enabled()) {
      tracer_->emit({.kind = obs::TraceKind::kCommit, .cycle = now,
                     .thread = 0, .core = id_, .seq = op_.seq,
                     .addr = op_.mem_addr, .value = 0});
    }
    op_valid_ = false;
    started_ = false;
    ++stats_.committed;
  }
  refill_head();  // keep head_seq() meaningful between ticks
}

Cycle InOrderCore::next_event(Cycle now) const {
  if (done()) return kNever;
  if (now < frozen_until_) return frozen_until_;
  if (op_valid_ && started_ && complete_at_ > now) return complete_at_;
  // The head could start, commit, or charge a gate stall this cycle.
  return now;
}

void InOrderCore::skip_cycles(Cycle from, Cycle to) {
  assert(to > from);
  const Cycle w = to - from;
  stats_.cycles += w;

  if (config_.sample_interval != 0) {
    Cycle c = from > next_sample_ ? from : next_sample_;
    while (c < to) {
      stats_.interval_committed.push_back(stats_.committed);
      next_sample_ = c + config_.sample_interval;
      c = next_sample_;
    }
  }

  if (from < frozen_until_) {
    assert(to <= frozen_until_ && "skip window overruns a recovery stall");
    stats_.recovery_stall_cycles += w;
    return;
  }
  if (!op_valid_) return;  // drained: nothing the naive loop would charge

  if (started_ && complete_at_ > from) {
    assert(to <= complete_at_ && "skip window overruns an execution wait");
    stats_.dispatch_stall_iq += w;
    return;
  }

  // Head complete but held at the gate for the whole window. The blocked
  // probes are idempotent (header contract), so one call stands in for the
  // per-cycle calls the naive loop would make.
  assert(started_ && "un-started head vetoes next_event");
  if (!env_->can_commit(id_, op_, from)) {
    stats_.commit_stall_gate += w;
    return;
  }
  if (op_.is_store() && !env_->on_store_commit(id_, op_, from)) {
    stats_.commit_stall_store += w;
    return;
  }
  assert(false && "skip window over a committable head instruction");
}

}  // namespace unsync::cpu
