// Versioned, checksummed binary serialization for simulator checkpoints.
//
// The wire format is a tagged-chunk container ("unsync.ckpt.v1"): every
// component writes its state inside a 4-byte-tagged, length-prefixed chunk,
// so a reader can verify it is consuming exactly the section it expects and
// a format mismatch fails loudly instead of silently misaligning the byte
// stream. Files carry a magic, the schema string, a payload length and a
// CRC-32 of the payload; write_file() goes through write-to-temp + atomic
// rename so a crash mid-save never leaves a torn checkpoint behind.
//
// Scalars are little-endian fixed-width; doubles are bit-cast to u64, which
// is what makes save -> load -> save byte-identical (the bit-exactness the
// resumable-run contract in docs/CHECKPOINTS.md is built on).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace unsync::ckpt {

/// Schema identifier embedded in every checkpoint file header.
inline constexpr std::string_view kSchema = "unsync.ckpt.v1";

/// A malformed, truncated or corrupted checkpoint (bad magic/schema, CRC
/// mismatch, chunk-tag mismatch, or reading past the end). The CLI maps
/// this to exit code 2 — "fix the input", not "the simulation failed".
struct CkptError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// seedable for incremental computation.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);
inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

/// FNV-1a 64-bit hash. Used where a 32-bit CRC's collision rate is too high
/// for comfort — e.g. the per-interval architectural-state fingerprints of
/// prefix-shared campaigns, where a collision would silently splice the
/// wrong tail onto a run. Not cryptographic; fine for states produced by
/// the deterministic simulator rather than an adversary.
inline std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

class Serializer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  /// Opens a tagged chunk (`tag` must be exactly 4 characters). The length
  /// is back-patched by end_chunk(); chunks nest.
  void begin_chunk(std::string_view tag);
  void end_chunk();

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
  std::vector<std::size_t> chunk_stack_;  // offsets of pending length fields
};

class Deserializer {
 public:
  explicit Deserializer(std::string payload) : buf_(std::move(payload)) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take_byte()); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str();

  /// Consumes the header of a chunk and verifies its tag; end_chunk()
  /// verifies the advertised length was consumed exactly.
  void begin_chunk(std::string_view tag);
  void end_chunk();

  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  char take_byte();
  void need(std::size_t n) const;

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string buf_;
  std::size_t pos_ = 0;
  std::vector<std::pair<std::string, std::size_t>> chunk_stack_;  // tag, end
};

// ---- Container I/O ----------------------------------------------------------

/// Wraps `payload` in the "unsync.ckpt.v1" container (magic, schema,
/// length, CRC-32) and returns the file bytes.
std::string wrap_container(std::string_view payload);

/// Verifies magic / schema / length / CRC and returns the payload.
/// Throws CkptError on any mismatch.
std::string unwrap_container(std::string_view file_bytes);

/// wrap_container + write-to-temp + atomic rename. Throws std::runtime_error
/// on I/O failure.
void write_file(const std::string& path, std::string_view payload);

/// Reads and unwraps a checkpoint file. Throws CkptError on corruption,
/// std::runtime_error if the file cannot be read.
std::string read_file(const std::string& path);

/// Writes `content` (arbitrary text, e.g. a JSONL journal) to `path`
/// crash-safely: write to `<path>.tmp`, flush, then atomically rename.
void atomic_write_text(const std::string& path, std::string_view content);

// ---- Container helpers ------------------------------------------------------

template <typename T, typename Fn>
void save_vec(Serializer& s, const std::vector<T>& v, Fn&& each) {
  s.u64(v.size());
  for (const auto& e : v) each(s, e);
}

template <typename T, typename Fn>
void load_vec(Deserializer& d, std::vector<T>& v, Fn&& each) {
  v.clear();
  v.resize(d.u64());
  for (auto& e : v) each(d, e);
}

inline void save_u64_vec(Serializer& s, const std::vector<std::uint64_t>& v) {
  save_vec(s, v, [](Serializer& ser, std::uint64_t x) { ser.u64(x); });
}

inline void load_u64_vec(Deserializer& d, std::vector<std::uint64_t>& v) {
  load_vec(d, v, [](Deserializer& de, std::uint64_t& x) { x = de.u64(); });
}

}  // namespace unsync::ckpt
