// Wire-level primitives of the "unsync.campaign_journal.v1" JSONL format.
//
// A campaign journal is a line-oriented crash log: line 0 is a header that
// pins the campaign identity, every later line records one completed job as
// a CRC-checked hex blob keyed by its global job index. The same format
// serves two topologies:
//
//   * single-process: one journal per campaign (CampaignRunner::Options),
//   * distributed:    one journal per *shard* — the header additionally
//                     carries `shard` / `workers`, entries still use global
//                     job indices, and a coordinator merges any set of
//                     shard journals whose headers pin the same campaign.
//
// This header owns only the byte-level concerns (hex codec, line field
// parsing, header/entry line rendering); what goes *inside* a blob
// (RunResult + metric snapshot) is the runtime layer's business — see
// src/runtime/campaign_journal.hpp.
//
// Robustness contract: any line that fails to parse, whose CRC mismatches,
// or whose index is out of range is simply *invalid* — callers drop it and
// re-run that job. Only a header that parses but pins a different campaign
// is a hard error (resuming against it would silently produce wrong
// output), and that policy lives in JournalHeader::require_match.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace unsync::ckpt {

/// Schema identifier on every campaign-journal header line.
inline constexpr std::string_view kCampaignJournalSchema =
    "unsync.campaign_journal.v1";

// ---- Low-level line utilities ----------------------------------------------

std::string hex_encode(std::string_view bytes);
/// Returns nullopt on odd length or a non-hex digit.
std::optional<std::string> hex_decode(std::string_view hex);

/// Finds `"key":` in a journal line and parses the decimal integer after
/// it. Returns nullopt if absent or malformed — callers drop such lines.
std::optional<std::uint64_t> find_u64(const std::string& line,
                                      std::string_view key);

/// Finds `"key":"<value>"` where the value contains no escapes (hex /
/// schema strings only).
std::optional<std::string> find_plain_str(const std::string& line,
                                          std::string_view key);

// ---- Header line -----------------------------------------------------------

/// The identity a journal pins. Two journals with matching headers were
/// produced by byte-identical campaign definitions, so their entries are
/// interchangeable (results are pure functions of the grid).
struct JournalHeader {
  std::uint64_t campaign_seed = 0;
  std::uint64_t jobs = 0;  ///< total jobs in the *whole* grid
  std::uint32_t grid_crc = 0;
  bool collect_metrics = false;
  /// Present only in per-shard journals of a distributed campaign: which
  /// shard this journal belongs to, out of how many.
  std::optional<std::uint64_t> shard;
  std::optional<std::uint64_t> workers;

  /// Renders the header line (no trailing newline). Single-process
  /// journals (no shard) keep the historical byte layout.
  std::string to_line() const;

  /// Parses a header line; nullopt if it is not a campaign-journal header.
  static std::optional<JournalHeader> parse(const std::string& line);

  /// Throws CkptError (naming `path`) unless this header pins the same
  /// campaign as `expect`: campaign_seed, jobs, grid_crc and
  /// collect_metrics must all match. shard/workers are topology, not
  /// identity — entries from any shard of the same campaign merge freely —
  /// but when `expect` carries a worker count, a mismatched worker count
  /// is rejected (the journal was sharded for a different topology).
  void require_match(const JournalHeader& expect,
                     const std::string& path) const;
};

// ---- Entry lines ------------------------------------------------------------

/// Renders one completed-job line (no trailing newline): index, label and
/// seed in the clear (label/seed are informational — both are pure
/// functions of the grid the header pins), plus a CRC-32-guarded hex blob.
std::string journal_entry_line(std::uint64_t index, std::string_view label,
                               std::uint64_t seed, std::string_view blob);

struct ParsedEntry {
  std::uint64_t index = 0;
  std::string blob;  ///< decoded, CRC-verified payload bytes
};

/// Parses and CRC-verifies one entry line. Returns nullopt for anything
/// torn, corrupt, or with index >= max_jobs — the caller re-runs that job.
std::optional<ParsedEntry> parse_entry_line(const std::string& line,
                                            std::uint64_t max_jobs);

// ---- Stats lines -------------------------------------------------------------

/// Renders a campaign-statistics line (no trailing newline): a
/// CRC-32-guarded hex blob keyed "stats" instead of "index". Entry readers
/// skip it automatically (parse_entry_line returns nullopt — no index), so
/// stats lines never affect resume or merge; `campaign status` decodes the
/// last valid one. What goes inside the blob is the runtime layer's
/// business (PrefixStats today).
std::string journal_stats_line(std::string_view blob);

/// Parses and CRC-verifies a stats line; nullopt if `line` is not a valid
/// stats line (callers then treat it as a torn entry).
std::optional<std::string> parse_stats_line(const std::string& line);

}  // namespace unsync::ckpt
