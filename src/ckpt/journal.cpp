#include "ckpt/journal.hpp"

#include "ckpt/serializer.hpp"

namespace unsync::ckpt {

namespace {

// obs::JsonWriter lives above this library in the dependency order, so the
// journal renders its two line shapes by hand. Labels are the only field
// that can need escaping; the escape table mirrors obs::json_quote so the
// bytes match what the observability layer would emit.
std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string hex_encode(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

std::optional<std::string> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::optional<std::uint64_t> find_u64(const std::string& line,
                                      std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return v;
}

std::optional<std::string> find_plain_str(const std::string& line,
                                          std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

std::string JournalHeader::to_line() const {
  std::string out = "{\"schema\":";
  out += json_quote(kCampaignJournalSchema);
  out += ",\"campaign_seed\":" + std::to_string(campaign_seed);
  out += ",\"jobs\":" + std::to_string(jobs);
  out += ",\"grid_crc\":" + std::to_string(grid_crc);
  out += ",\"collect_metrics\":";
  out += collect_metrics ? "true" : "false";
  if (shard) out += ",\"shard\":" + std::to_string(*shard);
  if (workers) out += ",\"workers\":" + std::to_string(*workers);
  out += "}";
  return out;
}

std::optional<JournalHeader> JournalHeader::parse(const std::string& line) {
  const auto schema = find_plain_str(line, "schema");
  if (!schema || *schema != kCampaignJournalSchema) return std::nullopt;
  const auto seed = find_u64(line, "campaign_seed");
  const auto jobs = find_u64(line, "jobs");
  const auto crc = find_u64(line, "grid_crc");
  if (!seed || !jobs || !crc) return std::nullopt;
  JournalHeader h;
  h.campaign_seed = *seed;
  h.jobs = *jobs;
  h.grid_crc = static_cast<std::uint32_t>(*crc);
  h.collect_metrics =
      line.find("\"collect_metrics\":true") != std::string::npos;
  h.shard = find_u64(line, "shard");
  h.workers = find_u64(line, "workers");
  return h;
}

void JournalHeader::require_match(const JournalHeader& expect,
                                  const std::string& path) const {
  auto fail = [&](std::string_view what) {
    throw CkptError("campaign journal '" + path + "': " + std::string(what) +
                    " does not match this campaign");
  };
  if (campaign_seed != expect.campaign_seed) fail("campaign_seed");
  if (jobs != expect.jobs) fail("jobs");
  if (grid_crc != expect.grid_crc) fail("grid_crc");
  if (collect_metrics != expect.collect_metrics) fail("collect_metrics");
  if (expect.workers && workers && *workers != *expect.workers) {
    fail("workers");
  }
}

std::string journal_entry_line(std::uint64_t index, std::string_view label,
                               std::uint64_t seed, std::string_view blob) {
  std::string out = "{\"index\":" + std::to_string(index);
  out += ",\"label\":" + json_quote(label);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"crc\":" + std::to_string(crc32(blob));
  out += ",\"blob\":\"" + hex_encode(blob) + "\"}";
  return out;
}

std::optional<ParsedEntry> parse_entry_line(const std::string& line,
                                            std::uint64_t max_jobs) {
  const auto index = find_u64(line, "index");
  const auto crc = find_u64(line, "crc");
  const auto hex = find_plain_str(line, "blob");
  if (!index || !crc || !hex || *index >= max_jobs) return std::nullopt;
  auto blob = hex_decode(*hex);
  if (!blob || crc32(*blob) != *crc) return std::nullopt;
  ParsedEntry e;
  e.index = *index;
  e.blob = std::move(*blob);
  return e;
}

std::string journal_stats_line(std::string_view blob) {
  std::string out = "{\"crc\":" + std::to_string(crc32(blob));
  out += ",\"stats\":\"" + hex_encode(blob) + "\"}";
  return out;
}

std::optional<std::string> parse_stats_line(const std::string& line) {
  const auto crc = find_u64(line, "crc");
  const auto hex = find_plain_str(line, "stats");
  if (!crc || !hex) return std::nullopt;
  auto blob = hex_decode(*hex);
  if (!blob || crc32(*blob) != *crc) return std::nullopt;
  return blob;
}

}  // namespace unsync::ckpt
