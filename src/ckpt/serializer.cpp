#include "ckpt/serializer.hpp"

#include <array>
#include <cstdio>
#include <fstream>

namespace unsync::ckpt {

namespace {

constexpr std::string_view kMagic = "UNSYCKPT";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---- Serializer -------------------------------------------------------------

void Serializer::begin_chunk(std::string_view tag) {
  if (tag.size() != 4) throw std::logic_error("chunk tag must be 4 chars");
  buf_.append(tag.data(), 4);
  chunk_stack_.push_back(buf_.size());
  u64(0);  // length placeholder, patched by end_chunk()
}

void Serializer::end_chunk() {
  if (chunk_stack_.empty()) throw std::logic_error("end_chunk without begin");
  const std::size_t at = chunk_stack_.back();
  chunk_stack_.pop_back();
  const std::uint64_t len = buf_.size() - (at + 8);
  for (std::size_t i = 0; i < 8; ++i) {
    buf_[at + i] = static_cast<char>((len >> (8 * i)) & 0xFF);
  }
}

// ---- Deserializer -----------------------------------------------------------

void Deserializer::need(std::size_t n) const {
  // A read may not cross the end of the innermost open chunk: a misaligned
  // reader fails at the exact field, not at some later end_chunk().
  const std::size_t limit =
      chunk_stack_.empty() ? buf_.size() : chunk_stack_.back().second;
  if (limit - pos_ < n) {
    throw CkptError("checkpoint truncated: need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(pos_));
  }
}

char Deserializer::take_byte() {
  need(1);
  return buf_[pos_++];
}

std::string Deserializer::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s = buf_.substr(pos_, n);
  pos_ += n;
  return s;
}

void Deserializer::begin_chunk(std::string_view tag) {
  need(4);
  const std::string_view got(buf_.data() + pos_, 4);
  if (got != tag) {
    throw CkptError("checkpoint chunk mismatch: expected '" +
                    std::string(tag) + "', found '" + std::string(got) + "'");
  }
  pos_ += 4;
  const std::uint64_t len = u64();
  need(len);
  chunk_stack_.emplace_back(std::string(tag), pos_ + len);
}

void Deserializer::end_chunk() {
  if (chunk_stack_.empty()) throw std::logic_error("end_chunk without begin");
  const auto [tag, end] = chunk_stack_.back();
  chunk_stack_.pop_back();
  if (pos_ != end) {
    throw CkptError("checkpoint chunk '" + tag + "' size mismatch: " +
                    std::to_string(end - pos_) + " bytes unconsumed");
  }
}

// ---- Container --------------------------------------------------------------

std::string wrap_container(std::string_view payload) {
  Serializer s;
  s.bytes(kMagic.data(), kMagic.size());
  s.str(kSchema);
  s.u64(payload.size());
  s.u32(crc32(payload));
  s.bytes(payload.data(), payload.size());
  return s.take();
}

std::string unwrap_container(std::string_view file_bytes) {
  Deserializer d{std::string(file_bytes)};
  if (file_bytes.size() < kMagic.size() ||
      file_bytes.substr(0, kMagic.size()) != kMagic) {
    throw CkptError("not a checkpoint file (bad magic)");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) (void)d.u8();
  const std::string schema = d.str();
  if (schema != kSchema) {
    throw CkptError("unsupported checkpoint schema '" + schema +
                    "' (expected '" + std::string(kSchema) + "')");
  }
  const std::uint64_t len = d.u64();
  const std::uint32_t want_crc = d.u32();
  if (d.remaining() != len) {
    throw CkptError("checkpoint payload truncated: header advertises " +
                    std::to_string(len) + " bytes, " +
                    std::to_string(d.remaining()) + " present");
  }
  std::string payload;
  payload.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    payload.push_back(static_cast<char>(d.u8()));
  }
  const std::uint32_t got_crc = crc32(payload);
  if (got_crc != want_crc) {
    throw CkptError("checkpoint CRC mismatch (file corrupted)");
  }
  return payload;
}

void atomic_write_text(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) throw std::runtime_error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " -> " + path);
  }
}

void write_file(const std::string& path, std::string_view payload) {
  atomic_write_text(path, wrap_container(payload));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return unwrap_container(bytes);
}

}  // namespace unsync::ckpt
