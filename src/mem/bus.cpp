#include "mem/bus.hpp"

#include <algorithm>

namespace unsync::mem {

Cycle Bus::acquire(Cycle now, Cycle hold) {
  const Cycle grant = std::max(now, next_free_);
  next_free_ = grant + hold;
  busy_cycles_ += hold;
  ++transactions_;
  return grant;
}

void Bus::reset() {
  next_free_ = 0;
  busy_cycles_ = 0;
  transactions_ = 0;
}

}  // namespace unsync::mem
