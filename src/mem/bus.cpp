#include "mem/bus.hpp"

#include <algorithm>

#include "ckpt/serializer.hpp"

namespace unsync::mem {

Cycle Bus::acquire(Cycle now, Cycle hold) {
  const Cycle grant = std::max(now, next_free_);
  next_free_ = grant + hold;
  busy_cycles_ += hold;
  ++transactions_;
  if (avf_) avf_->add(grant + hold - now);
  return grant;
}

void Bus::reset() {
  next_free_ = 0;
  busy_cycles_ = 0;
  transactions_ = 0;
}

void Bus::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("BUS0");
  s.u64(next_free_);
  s.u64(busy_cycles_);
  s.u64(transactions_);
  s.end_chunk();
}

void Bus::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("BUS0");
  next_free_ = d.u64();
  busy_cycles_ = d.u64();
  transactions_ = d.u64();
  d.end_chunk();
}

}  // namespace unsync::mem
