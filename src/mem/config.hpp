// Memory-system configuration (defaults follow Table I of the paper).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace unsync::mem {

enum class WritePolicy : std::uint8_t {
  kWriteThrough,  ///< every store is propagated to the next level
  kWriteBack,     ///< stores dirty the line; eviction writes back
};

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t assoc = 2;
  Cycle hit_latency = 2;
  std::uint32_t mshrs = 10;
  WritePolicy write_policy = WritePolicy::kWriteBack;

  std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * assoc);
  }
};

struct MemConfig {
  CacheConfig l1d{.size_bytes = 32 * 1024, .line_bytes = 64, .assoc = 2,
                  .hit_latency = 2, .mshrs = 10,
                  .write_policy = WritePolicy::kWriteBack};
  /// Split instruction cache (Table I: 32 KB split I/D, 2-way).
  CacheConfig l1i{.size_bytes = 32 * 1024, .line_bytes = 64, .assoc = 2,
                  .hit_latency = 1, .mshrs = 4,
                  .write_policy = WritePolicy::kWriteBack};
  CacheConfig l2{.size_bytes = 4 * 1024 * 1024, .line_bytes = 64, .assoc = 8,
                 .hit_latency = 20, .mshrs = 20,
                 .write_policy = WritePolicy::kWriteBack};

  /// L1<->L2 bus occupancy per cache-line transfer, and per-word store
  /// write-through transfer, in cycles.
  Cycle bus_line_cycles = 4;
  Cycle bus_word_cycles = 1;

  /// DRAM access latency (Table I: 400 cycles) and per-line bandwidth
  /// occupancy on the memory channel (64-bit wide bus, 64-byte lines).
  Cycle dram_latency = 400;
  Cycle dram_line_cycles = 8;
};

}  // namespace unsync::mem
