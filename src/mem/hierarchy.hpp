// The simulated memory system: per-core split L1, a shared L2, the shared
// L1<->L2 bus, and a DRAM channel (parameters per Table I).
//
// The hierarchy is a latency calculator with resource reservation: accesses
// return their completion cycle, and shared resources (bus, MSHRs, DRAM
// channel) push completion times out under contention. Both L1 write
// policies are supported because the paper's §III-C.1 argument — and our
// reproduction of it — contrasts write-through (UnSync's requirement)
// against write-back.
#pragma once

#include <memory>
#include <vector>

#include <string>

#include "common/types.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace unsync::mem {

struct MemAccessResult {
  Cycle done = 0;
  bool l1_hit = false;
  bool l2_hit = false;
};

class MemoryHierarchy {
 public:
  MemoryHierarchy(const MemConfig& config, unsigned num_cores);

  const MemConfig& config() const { return config_; }
  unsigned num_cores() const { return static_cast<unsigned>(l1d_.size()); }

  /// Data load by `core` issued at `now`.
  MemAccessResult load(CoreId core, Addr addr, Cycle now);

  /// Instruction fetch by `core` at `now` (read path through the split
  /// I-cache; misses contend for the same shared bus and L2).
  MemAccessResult ifetch(CoreId core, Addr addr, Cycle now);

  /// Store under a write-back L1: write-allocate; dirty-victim write-backs
  /// consume bus bandwidth.
  MemAccessResult store_writeback(CoreId core, Addr addr, Cycle now);

  /// Store under a write-through L1: updates the local L1 state only (the
  /// line is refreshed if present, never dirtied). The word itself must be
  /// propagated by the caller — via push_word_to_l2() — when its store
  /// buffer / Communication Buffer drains.
  Cycle store_writethrough_local(CoreId core, Addr addr, Cycle now);

  /// Pushes one store word to the L2 over the shared bus (write-through
  /// traffic / CB drain). Returns the completion cycle.
  Cycle push_word_to_l2(Addr addr, Cycle now);

  /// Installs every line of [base, base+bytes) into the L2 without charging
  /// simulated time — cache warmup before the measured region of interest.
  void prewarm_l2(Addr base, std::uint64_t bytes);

  /// Installs a code region into every core's I-cache (and the L2).
  void prewarm_icaches(Addr base, std::uint64_t bytes);

  Cache& l1(CoreId core) { return *l1d_.at(core); }
  const Cache& l1(CoreId core) const { return *l1d_.at(core); }
  Cache& icache(CoreId core) { return *l1i_.at(core); }
  const Cache& icache(CoreId core) const { return *l1i_.at(core); }
  Cache& l2() { return l2_; }
  const Cache& l2() const { return l2_; }
  Bus& bus() { return bus_; }
  const Bus& bus() const { return bus_; }
  Bus& dram_channel() { return dram_chan_; }

  /// Core id used in kBusTransaction records for shared traffic with no
  /// originating core (Communication-Buffer drains).
  static constexpr std::uint32_t kSharedCore = ~std::uint32_t{0};

  /// Attaches an event-trace gate; the hierarchy emits one
  /// kBusTransaction record per granted shared-bus transfer. Null sink =
  /// one branch per transfer.
  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }

  /// Re-integrates every cache tag array's ACE residency at `now` (one
  /// null-pointer branch per cache when no trackers are attached). The
  /// System layer calls this once when wiring AVF trackers so prewarmed
  /// occupancy is captured from cycle 0; per-access updates happen inline
  /// on the touched caches only.
  void avf_update_all(Cycle now) {
    for (auto& c : l1d_) c->avf_update(now);
    for (auto& c : l1i_) c->avf_update(now);
    l2_.avf_update(now);
  }

  /// Publishes cache / bus / DRAM-channel counters into `reg` under
  /// `prefix` (e.g. "unsync.mem"): per-core L1D/L1I, shared L2, buses.
  void publish_metrics(obs::MetricsRegistry& reg,
                       const std::string& prefix) const;

  /// Checkpoint hooks: every cache (tags, LRU, stats, MSHRs) plus both
  /// buses. The hierarchy must be constructed with the same MemConfig and
  /// core count as the saved instance.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  /// L2 read reached at cycle `t` (after bus transfer); returns fill-ready
  /// cycle and whether it hit.
  std::pair<Cycle, bool> l2_read(Addr addr, Cycle t);
  void l2_write_state(Addr addr, Cycle t);
  /// Shared read path: L1 lookup, MSHR merge, bus transfer, L2 access.
  MemAccessResult read_through(CoreId core, Cache& l1, const CacheConfig& cfg,
                               Addr addr, Cycle now);
  /// Emits one kBusTransaction record (value: 0 = line fill, 1 = dirty
  /// victim write-back, 2 = store-word push).
  void emit_bus(Cycle grant, std::uint32_t core, Addr addr,
                std::uint64_t value) const;

  MemConfig config_;
  std::vector<std::unique_ptr<Cache>> l1d_;
  std::vector<std::unique_ptr<Cache>> l1i_;
  Cache l2_;
  Bus bus_;        // shared L1<->L2 interconnect
  Bus dram_chan_;  // memory channel behind the L2
  const obs::Tracer* tracer_ = nullptr;
};

}  // namespace unsync::mem
