#include "mem/tlb.hpp"

#include <cassert>

#include "ckpt/serializer.hpp"

namespace unsync::mem {

Tlb::Tlb(const TlbConfig& config)
    : config_(config),
      num_sets_(config.entries / config.assoc),
      entries_(config.entries) {
  assert(config.assoc > 0 && config.entries % config.assoc == 0);
  assert(num_sets_ > 0);
}

bool Tlb::contains(Addr addr) const {
  const Addr vpn = vpn_of(addr);
  const std::size_t base = set_of(vpn) * config_.assoc;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    const Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) return true;
  }
  return false;
}

bool Tlb::access(Addr addr) {
  const Addr vpn = vpn_of(addr);
  const std::size_t base = set_of(vpn) * config_.assoc;
  ++clock_;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      e.lru = clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Install the walked translation over the LRU way.
  std::size_t victim = base;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (!entries_[base + w].valid) {
      victim = base + w;
      break;
    }
    if (entries_[base + w].lru < entries_[victim].lru) victim = base + w;
  }
  if (!entries_[victim].valid) ++valid_count_;
  entries_[victim] = {vpn, true, clock_};
  return false;
}

void Tlb::flush() {
  for (auto& e : entries_) e.valid = false;
  valid_count_ = 0;
}

void Tlb::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("TLB0");
  s.u64(entries_.size());
  for (const Entry& e : entries_) {
    s.u64(e.vpn);
    s.b(e.valid);
    s.u64(e.lru);
  }
  s.u64(clock_);
  s.u64(hits_);
  s.u64(misses_);
  s.end_chunk();
}

void Tlb::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("TLB0");
  if (d.u64() != entries_.size()) {
    throw ckpt::CkptError("TLB geometry mismatch");
  }
  valid_count_ = 0;
  for (Entry& e : entries_) {
    e.vpn = d.u64();
    e.valid = d.b();
    e.lru = d.u64();
    if (e.valid) ++valid_count_;
  }
  clock_ = d.u64();
  hits_ = d.u64();
  misses_ = d.u64();
  d.end_chunk();
}

}  // namespace unsync::mem
