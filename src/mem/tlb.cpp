#include "mem/tlb.hpp"

#include <cassert>

namespace unsync::mem {

Tlb::Tlb(const TlbConfig& config)
    : config_(config),
      num_sets_(config.entries / config.assoc),
      entries_(config.entries) {
  assert(config.assoc > 0 && config.entries % config.assoc == 0);
  assert(num_sets_ > 0);
}

bool Tlb::contains(Addr addr) const {
  const Addr vpn = vpn_of(addr);
  const std::size_t base = set_of(vpn) * config_.assoc;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    const Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) return true;
  }
  return false;
}

bool Tlb::access(Addr addr) {
  const Addr vpn = vpn_of(addr);
  const std::size_t base = set_of(vpn) * config_.assoc;
  ++clock_;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      e.lru = clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Install the walked translation over the LRU way.
  std::size_t victim = base;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (!entries_[base + w].valid) {
      victim = base + w;
      break;
    }
    if (entries_[base + w].lru < entries_[victim].lru) victim = base + w;
  }
  entries_[victim] = {vpn, true, clock_};
  return false;
}

void Tlb::flush() {
  for (auto& e : entries_) e.valid = false;
}

}  // namespace unsync::mem
