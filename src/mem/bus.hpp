// A shared bus modelled as a single serially-granted resource.
//
// acquire(now, hold) returns the grant cycle — the first cycle at or after
// `now` when the bus is free — and reserves it for `hold` cycles. This
// first-come-first-served reservation discipline is how both the L1<->L2
// interconnect contention and the Communication-Buffer drain arbitration
// ("as and when the L1-L2 data bus is free", paper §III-A) are modelled.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "fault/avf.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::mem {

class Bus {
 public:
  /// Reserves the bus for [grant, grant+hold) and returns grant.
  Cycle acquire(Cycle now, Cycle hold);

  /// Attaches an ACE residency tracker (fault/avf.hpp): each transaction's
  /// queue-occupancy window [now, grant+hold) is charged as entry-cycles.
  /// Observation only — never perturbs grant timing. Null detaches.
  void set_avf(fault::ResidencyTracker* avf) { avf_ = avf; }

  /// True when the bus would grant immediately at `now`.
  bool free_at(Cycle now) const { return next_free_ <= now; }

  Cycle next_free() const { return next_free_; }

  /// Total cycles the bus has been held (utilisation accounting).
  Cycle busy_cycles() const { return busy_cycles_; }
  std::uint64_t transactions() const { return transactions_; }

  void reset();

  /// Checkpoint hooks: reservation horizon and utilisation counters.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  Cycle next_free_ = 0;
  Cycle busy_cycles_ = 0;
  std::uint64_t transactions_ = 0;
  fault::ResidencyTracker* avf_ = nullptr;  // observability; not checkpointed
};

}  // namespace unsync::mem
