// Translation lookaside buffer (Table I: 48-entry 2-way I-TLB, 64-entry
// 2-way D-TLB).
//
// Set-associative with LRU, 4 KiB pages. Unlike the Cache class, set counts
// need not be powers of two (48 entries / 2-way = 24 sets), so indexing is
// modulo. A miss costs the core a fixed page-walk latency; the TLB is also
// one of the parity-protected storage structures of the UnSync plan.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fault/avf.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::mem {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t assoc = 2;
  std::uint32_t page_bits = 12;  // 4 KiB pages
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  const TlbConfig& config() const { return config_; }

  /// Translates the page of `addr`: returns true on hit; on miss the entry
  /// is installed (the walk result) and false is returned.
  bool access(Addr addr);

  /// Probe without side effects.
  bool contains(Addr addr) const;

  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / static_cast<double>(total)
                 : 0.0;
  }

  std::uint64_t valid_count() const { return valid_count_; }

  /// ACE residency hook (fault/avf.hpp): integrates the valid-entry count
  /// over cycles. access() takes no cycle argument, so the owning core
  /// calls avf_update(now) at each translation site. Observation only.
  void set_avf(fault::ResidencyTracker* avf) { avf_ = avf; }
  void avf_update(Cycle now) {
    if (avf_) avf_->set_live(now, valid_count_);
  }

  /// Checkpoint hooks: serialise / restore all mutable state (entries, LRU
  /// clock, hit/miss counters). Geometry must match the saved instance.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  struct Entry {
    Addr vpn = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  Addr vpn_of(Addr addr) const { return addr >> config_.page_bits; }
  std::size_t set_of(Addr vpn) const {
    return static_cast<std::size_t>(vpn % num_sets_);
  }

  TlbConfig config_;
  std::uint32_t num_sets_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t valid_count_ = 0;  // incremental count of valid entries
  fault::ResidencyTracker* avf_ = nullptr;  // observability; not checkpointed
};

}  // namespace unsync::mem
