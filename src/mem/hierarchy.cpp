#include "mem/hierarchy.hpp"

#include "ckpt/serializer.hpp"
#include "mem/write_buffer.hpp"

namespace unsync::mem {

MemoryHierarchy::MemoryHierarchy(const MemConfig& config, unsigned num_cores)
    : config_(config), l2_(config.l2) {
  l1d_.reserve(num_cores);
  l1i_.reserve(num_cores);
  for (unsigned i = 0; i < num_cores; ++i) {
    l1d_.push_back(std::make_unique<Cache>(config.l1d));
    l1i_.push_back(std::make_unique<Cache>(config.l1i));
  }
}

std::pair<Cycle, bool> MemoryHierarchy::l2_read(Addr addr, Cycle t) {
  const Addr line = l2_.line_addr(addr);
  const LookupResult r = l2_.access_read(addr);
  l2_.avf_update(t);
  if (r.dirty_victim) {
    // Dirty L2 victim drains to DRAM; consumes channel bandwidth but is off
    // the critical path of this access.
    dram_chan_.acquire(t, config_.dram_line_cycles);
  }
  if (r.hit) {
    // A tag hit on a line whose fill is still in flight (the tag array is
    // updated at allocation time) must wait for the data to arrive.
    if (const auto fill = l2_.mshrs().in_flight(line, t)) {
      return {std::max(*fill, t + config_.l2.hit_latency), true};
    }
    return {t + config_.l2.hit_latency, true};
  }
  if (const auto done = l2_.mshrs().in_flight(line, t)) {
    return {*done, false};
  }
  const Cycle free = l2_.mshrs().first_free(t);
  l2_.mshrs().add_stall(free - t);
  const Cycle grant = dram_chan_.acquire(free + config_.l2.hit_latency,
                                         config_.dram_line_cycles);
  const Cycle done = grant + config_.dram_latency;
  l2_.mshrs().allocate(line, t, done);
  return {done, false};
}

void MemoryHierarchy::l2_write_state(Addr addr, Cycle t) {
  const Addr line = l2_.line_addr(addr);
  const LookupResult r = l2_.access_write(addr);
  l2_.avf_update(t);
  if (r.dirty_victim) {
    dram_chan_.acquire(t, config_.dram_line_cycles);
  }
  if (!r.hit && !l2_.mshrs().in_flight(line, t)) {
    // Write-allocate: the rest of the line is fetched from DRAM. The write
    // itself is posted (merges into the fill buffer), but the fetch
    // consumes channel bandwidth and readers of the line must wait for it.
    if (l2_.mshrs().first_free(t) <= t) {
      const Cycle grant = dram_chan_.acquire(t + config_.l2.hit_latency,
                                             config_.dram_line_cycles);
      l2_.mshrs().allocate(line, t, grant + config_.dram_latency);
    }
  }
}

void MemoryHierarchy::emit_bus(Cycle grant, std::uint32_t core, Addr addr,
                               std::uint64_t value) const {
  if (tracer_ && tracer_->enabled()) {
    tracer_->emit({.kind = obs::TraceKind::kBusTransaction,
                   .cycle = grant,
                   .thread = 0,
                   .core = core,
                   .seq = 0,
                   .addr = addr,
                   .value = value});
  }
}

MemAccessResult MemoryHierarchy::read_through(CoreId core, Cache& l1,
                                              const CacheConfig& cfg,
                                              Addr addr, Cycle now) {
  const Addr line = l1.line_addr(addr);
  const LookupResult r = l1.access_read(addr);
  l1.avf_update(now);
  if (r.hit) {
    // The line may still be in flight (allocated at miss time): a "hit"
    // under the fill waits for the outstanding MSHR to complete.
    if (const auto fill = l1.mshrs().in_flight(line, now)) {
      return {.done = std::max(*fill, now + cfg.hit_latency),
              .l1_hit = false, .l2_hit = false};
    }
    return {.done = now + cfg.hit_latency, .l1_hit = true, .l2_hit = false};
  }
  if (r.dirty_victim) {
    // Evicted dirty line: write-back transfer to L2 (off critical path).
    const Cycle wb = bus_.acquire(now, config_.bus_line_cycles);
    emit_bus(wb, static_cast<std::uint32_t>(core), *r.dirty_victim, 1);
    l2_write_state(*r.dirty_victim, now);
  }
  if (const auto done = l1.mshrs().in_flight(line, now)) {
    return {.done = *done, .l1_hit = false, .l2_hit = false};
  }
  const Cycle free = l1.mshrs().first_free(now);
  l1.mshrs().add_stall(free - now);
  const Cycle tag_checked = free + cfg.hit_latency;
  const Cycle grant = bus_.acquire(tag_checked, config_.bus_line_cycles);
  emit_bus(grant, static_cast<std::uint32_t>(core), line, 0);
  const auto [l2_done, l2_hit] = l2_read(addr, grant + config_.bus_line_cycles);
  l1.mshrs().allocate(line, now, l2_done);
  return {.done = l2_done, .l1_hit = false, .l2_hit = l2_hit};
}

MemAccessResult MemoryHierarchy::load(CoreId core, Addr addr, Cycle now) {
  return read_through(core, *l1d_.at(core), config_.l1d, addr, now);
}

MemAccessResult MemoryHierarchy::ifetch(CoreId core, Addr addr, Cycle now) {
  Cache& l1i = *l1i_.at(core);
  const MemAccessResult demand =
      read_through(core, l1i, config_.l1i, addr, now);
  // Next-line prefetch: sequential code is the common case, so the fetch
  // engine streams the following line in the shadow of the demand access.
  const Addr next_line = l1i.line_addr(addr) + config_.l1i.line_bytes;
  if (!l1i.contains(next_line) &&
      !l1i.mshrs().in_flight(next_line, now).has_value() &&
      l1i.mshrs().first_free(now) <= now) {
    (void)read_through(core, l1i, config_.l1i, next_line, now);
  }
  return demand;
}

MemAccessResult MemoryHierarchy::store_writeback(CoreId core, Addr addr,
                                                 Cycle now) {
  Cache& l1 = *l1d_.at(core);
  const Addr line = l1.line_addr(addr);
  const LookupResult r = l1.access_write(addr);
  l1.avf_update(now);
  if (r.hit) {
    if (l1.mshrs().in_flight(line, now)) {
      // Store to a line whose fill is in flight: the data merges into the
      // MSHR's fill buffer — the store itself completes immediately.
      return {.done = now + config_.l1d.hit_latency, .l1_hit = false,
              .l2_hit = false};
    }
    return {.done = now + config_.l1d.hit_latency, .l1_hit = true,
            .l2_hit = false};
  }
  if (r.dirty_victim) {
    const Cycle wb = bus_.acquire(now, config_.bus_line_cycles);
    emit_bus(wb, static_cast<std::uint32_t>(core), *r.dirty_victim, 1);
    l2_write_state(*r.dirty_victim, now);
  }
  // Write-allocate: the line is fetched like a load miss, but the store
  // data is posted into the MSHR — only an MSHR-full condition delays the
  // store's completion from the core's point of view.
  if (l1.mshrs().in_flight(line, now)) {
    return {.done = now + config_.l1d.hit_latency, .l1_hit = false,
            .l2_hit = false};
  }
  const Cycle free = l1.mshrs().first_free(now);
  l1.mshrs().add_stall(free - now);
  const Cycle tag_checked = free + config_.l1d.hit_latency;
  const Cycle grant = bus_.acquire(tag_checked, config_.bus_line_cycles);
  emit_bus(grant, static_cast<std::uint32_t>(core), line, 0);
  const auto [l2_done, l2_hit] = l2_read(addr, grant + config_.bus_line_cycles);
  l1.mshrs().allocate(line, now, l2_done);
  return {.done = tag_checked, .l1_hit = false, .l2_hit = l2_hit};
}

Cycle MemoryHierarchy::store_writethrough_local(CoreId core, Addr addr,
                                                Cycle now) {
  Cache& l1 = *l1d_.at(core);
  l1.access_write(addr);  // refresh if present; no-write-allocate on miss
  l1.avf_update(now);
  return now + config_.l1d.hit_latency;
}

void MemoryHierarchy::prewarm_l2(Addr base, std::uint64_t bytes) {
  for (Addr a = l2_.line_addr(base); a < base + bytes;
       a += config_.l2.line_bytes) {
    l2_.access_read(a);
  }
}

void MemoryHierarchy::prewarm_icaches(Addr base, std::uint64_t bytes) {
  prewarm_l2(base, bytes);
  for (auto& icache : l1i_) {
    for (Addr a = icache->line_addr(base); a < base + bytes;
         a += config_.l1i.line_bytes) {
      icache->access_read(a);
    }
  }
}

Cycle MemoryHierarchy::push_word_to_l2(Addr addr, Cycle now) {
  const Cycle grant = bus_.acquire(now, config_.bus_word_cycles);
  emit_bus(grant, kSharedCore, addr, 2);
  const Cycle arrive = grant + config_.bus_word_cycles;
  l2_write_state(addr, arrive);
  return arrive + config_.l2.hit_latency;
}

void MemoryHierarchy::publish_metrics(obs::MetricsRegistry& reg,
                                      const std::string& prefix) const {
  const auto publish_cache = [&reg](const std::string& p, const Cache& c) {
    reg.set_counter(p + ".hits", c.hits());
    reg.set_counter(p + ".misses", c.misses());
    reg.set_counter(p + ".writebacks", c.writebacks());
    reg.set_counter(p + ".mshr_stall_cycles", c.mshrs().stall_cycles());
  };
  for (std::size_t i = 0; i < l1d_.size(); ++i) {
    publish_cache(prefix + ".l1d" + std::to_string(i), *l1d_[i]);
    publish_cache(prefix + ".l1i" + std::to_string(i), *l1i_[i]);
  }
  publish_cache(prefix + ".l2", l2_);
  reg.set_counter(prefix + ".bus.busy_cycles", bus_.busy_cycles());
  reg.set_counter(prefix + ".bus.transactions", bus_.transactions());
  reg.set_counter(prefix + ".dram.busy_cycles", dram_chan_.busy_cycles());
  reg.set_counter(prefix + ".dram.transactions", dram_chan_.transactions());
}

void WriteBuffer::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("WBUF");
  s.u64(capacity_);
  s.u64(entries_.size());
  for (const WriteBufferEntry& e : entries_) {
    s.u64(e.addr);
    s.u64(e.seq);
    s.u64(e.ready);
  }
  s.u64(peak_);
  s.u64(total_pushed_);
  s.end_chunk();
}

void WriteBuffer::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("WBUF");
  if (d.u64() != capacity_) {
    throw ckpt::CkptError("write buffer capacity mismatch");
  }
  entries_.resize(d.u64());
  for (WriteBufferEntry& e : entries_) {
    e.addr = d.u64();
    e.seq = d.u64();
    e.ready = d.u64();
  }
  peak_ = d.u64();
  total_pushed_ = d.u64();
  d.end_chunk();
}

void MemoryHierarchy::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("MEMH");
  s.u64(l1d_.size());
  for (const auto& c : l1d_) c->save_state(s);
  for (const auto& c : l1i_) c->save_state(s);
  l2_.save_state(s);
  bus_.save_state(s);
  dram_chan_.save_state(s);
  s.end_chunk();
}

void MemoryHierarchy::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("MEMH");
  if (d.u64() != l1d_.size()) {
    throw ckpt::CkptError("memory hierarchy core-count mismatch");
  }
  for (const auto& c : l1d_) c->load_state(d);
  for (const auto& c : l1i_) c->load_state(d);
  l2_.load_state(d);
  bus_.load_state(d);
  dram_chan_.load_state(d);
  d.end_chunk();
}

}  // namespace unsync::mem
