// Non-coalescing FIFO write buffer.
//
// Used in two roles: the baseline/Reunion post-commit store buffer, and the
// storage substrate of the UnSync Communication Buffer (the CB adds its
// pairwise drain protocol on top, in src/core/unsync.cpp). Non-coalescing is
// a paper requirement (§III-A): each CB entry is an individual store tagged
// with its instruction, so redundant copies can be matched one-to-one.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>

#include "common/types.hpp"
#include "fault/avf.hpp"
#include "obs/metrics.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::mem {

struct WriteBufferEntry {
  Addr addr = 0;
  SeqNum seq = 0;    ///< committing instruction's sequence number
  Cycle ready = 0;   ///< cycle at which the entry became visible
};

class WriteBuffer {
 public:
  explicit WriteBuffer(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= capacity_; }

  /// Appends a store; returns false (and changes nothing) when full.
  bool push(Addr addr, SeqNum seq, Cycle ready) {
    if (full()) return false;
    entries_.push_back({addr, seq, ready});
    peak_ = entries_.size() > peak_ ? entries_.size() : peak_;
    ++total_pushed_;
    return true;
  }

  const WriteBufferEntry& front() const {
    assert(!empty());
    return entries_.front();
  }

  void pop() {
    assert(!empty());
    entries_.pop_front();
  }

  /// Indexed access in FIFO order (CB drain-frontier matching).
  const WriteBufferEntry& at(std::size_t i) const { return entries_.at(i); }

  void clear() { entries_.clear(); }

  /// Replaces this buffer's contents with another's (UnSync recovery step 5:
  /// "the content of the CB, corresponding to the erroneous core, is
  /// overwritten by data from the error-free core").
  void copy_from(const WriteBuffer& other) {
    entries_ = other.entries_;
  }

  std::size_t peak_occupancy() const { return peak_; }
  std::uint64_t total_pushed() const { return total_pushed_; }

  /// ACE residency hook (fault/avf.hpp): integrates occupancy over cycles.
  /// push/pop/copy_from take no cycle argument, so the owning system calls
  /// avf_update(now) at its commit/drain/recovery sites. Observation only.
  void set_avf(fault::ResidencyTracker* avf) { avf_ = avf; }
  void avf_update(Cycle now) {
    if (avf_) avf_->set_live(now, entries_.size());
  }

  /// Checkpoint hooks: entries plus occupancy counters. Capacity must match
  /// the saved instance. Defined in hierarchy.cpp with the other mem hooks.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  std::size_t capacity_;
  std::deque<WriteBufferEntry> entries_;
  std::size_t peak_ = 0;
  std::uint64_t total_pushed_ = 0;
  fault::ResidencyTracker* avf_ = nullptr;  // observability; not checkpointed
};

/// Publishes a write buffer's occupancy counters into `reg` under `prefix`
/// (e.g. "unsync.group0.cb0").
inline void publish_write_buffer(obs::MetricsRegistry& reg,
                                 const std::string& prefix,
                                 const WriteBuffer& wb) {
  reg.set_counter(prefix + ".capacity", wb.capacity());
  reg.set_counter(prefix + ".peak_occupancy", wb.peak_occupancy());
  reg.set_counter(prefix + ".total_pushed", wb.total_pushed());
}

}  // namespace unsync::mem
