#include "mem/cache.hpp"

#include <algorithm>
#include <cassert>

#include "ckpt/serializer.hpp"

namespace unsync::mem {

void MshrFile::prune(Cycle now) const {
  std::erase_if(misses_, [now](const Entry& e) { return e.done <= now; });
}

std::optional<Cycle> MshrFile::in_flight(Addr line_addr, Cycle now) const {
  prune(now);
  for (const auto& e : misses_) {
    if (e.line_addr == line_addr) return e.done;
  }
  return std::nullopt;
}

Cycle MshrFile::first_free(Cycle now) const {
  prune(now);
  if (misses_.size() < entries_) return now;
  Cycle earliest = misses_.front().done;
  for (const auto& e : misses_) earliest = std::min(earliest, e.done);
  return earliest;
}

void MshrFile::allocate(Addr line_addr, Cycle now, Cycle done) {
  prune(now);
  assert(misses_.size() < entries_);
  misses_.push_back({line_addr, done});
  if (avf_) avf_->add(done > now ? done - now : 0);
}

std::uint32_t MshrFile::occupancy(Cycle now) const {
  prune(now);
  return static_cast<std::uint32_t>(misses_.size());
}

namespace {
unsigned log2_exact(std::uint64_t v) {
  unsigned s = 0;
  while ((std::uint64_t{1} << s) < v) ++s;
  return s;
}
}  // namespace

Cache::Cache(const CacheConfig& config)
    : config_(config),
      lines_(static_cast<std::size_t>(config.num_sets()) * config.assoc),
      mshrs_(config.mshrs) {
  assert(config.num_sets() > 0 && (config.num_sets() & (config.num_sets() - 1)) == 0 &&
         "set count must be a power of two");
  assert((config.line_bytes & (config.line_bytes - 1)) == 0 &&
         "line size must be a power of two");
  line_shift_ = log2_exact(config.line_bytes);
  set_shift_ = log2_exact(config.num_sets());
  set_mask_ = config.num_sets() - 1;
}

std::size_t Cache::set_index(Addr addr) const {
  return static_cast<std::size_t>((addr >> line_shift_) & set_mask_);
}

Addr Cache::tag_of(Addr addr) const {
  return addr >> (line_shift_ + set_shift_);
}

bool Cache::contains(Addr addr) const {
  const auto set = set_index(addr) * config_.assoc;
  const Addr tag = tag_of(addr);
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (lines_[set + w].valid && lines_[set + w].tag == tag) return true;
  }
  return false;
}

bool Cache::line_dirty(Addr addr) const {
  const auto set = set_index(addr) * config_.assoc;
  const Addr tag = tag_of(addr);
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    const Line& l = lines_[set + w];
    if (l.valid && l.tag == tag) return l.dirty;
  }
  return false;
}

LookupResult Cache::lookup(Addr addr, bool is_write) {
  // One shift serves both decompositions (set + tag) on this per-access
  // hot path; set_index()/tag_of() stay for the cold probe helpers.
  const Addr line = addr >> line_shift_;
  const auto set_bits = static_cast<std::size_t>(line & set_mask_);
  const auto set = set_bits * config_.assoc;
  const Addr tag = line >> set_shift_;
  ++lru_clock_;

  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Line& l = lines_[set + w];
    if (l.valid && l.tag == tag) {
      ++hits_;
      l.lru = lru_clock_;
      if (is_write && config_.write_policy == WritePolicy::kWriteBack) {
        l.dirty = true;
      }
      return {.hit = true, .dirty_victim = std::nullopt};
    }
  }

  ++misses_;
  // Write miss under write-through: no-write-allocate — the word goes to
  // the next level but the line is not brought in.
  if (is_write && config_.write_policy == WritePolicy::kWriteThrough) {
    return {.hit = false, .dirty_victim = std::nullopt};
  }

  // Choose victim: first invalid way, else LRU.
  std::size_t victim = set;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (!lines_[set + w].valid) {
      victim = set + w;
      break;
    }
    if (lines_[set + w].lru < lines_[victim].lru) victim = set + w;
  }

  LookupResult r;
  r.hit = false;
  Line& v = lines_[victim];
  if (v.valid && v.dirty) {
    ++writebacks_;
    r.dirty_victim = ((v.tag << set_shift_) | set_bits) << line_shift_;
  }
  if (!v.valid) ++valid_count_;
  v.valid = true;
  v.tag = tag;
  v.dirty = is_write && config_.write_policy == WritePolicy::kWriteBack;
  v.lru = lru_clock_;
  return r;
}

LookupResult Cache::access_read(Addr addr) { return lookup(addr, false); }

LookupResult Cache::access_write(Addr addr) { return lookup(addr, true); }

bool Cache::invalidate(Addr addr) {
  const auto set = set_index(addr) * config_.assoc;
  const Addr tag = tag_of(addr);
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Line& l = lines_[set + w];
    if (l.valid && l.tag == tag) {
      l.valid = false;
      l.dirty = false;
      --valid_count_;
      return true;
    }
  }
  return false;
}

void Cache::invalidate_all() {
  for (auto& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
  valid_count_ = 0;
}

std::uint64_t Cache::lines_dirty() const {
  return static_cast<std::uint64_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const Line& l) { return l.valid && l.dirty; }));
}

double Cache::miss_rate() const {
  const auto total = hits_ + misses_;
  return total ? static_cast<double>(misses_) / static_cast<double>(total) : 0.0;
}

void MshrFile::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("MSHR");
  s.u32(entries_);
  s.u64(misses_.size());
  for (const Entry& e : misses_) {
    s.u64(e.line_addr);
    s.u64(e.done);
  }
  s.u64(stall_cycles_);
  s.end_chunk();
}

void MshrFile::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("MSHR");
  if (d.u32() != entries_) {
    throw ckpt::CkptError("MSHR capacity mismatch");
  }
  misses_.resize(d.u64());
  for (Entry& e : misses_) {
    e.line_addr = d.u64();
    e.done = d.u64();
  }
  stall_cycles_ = d.u64();
  d.end_chunk();
}

void Cache::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("CACH");
  s.u64(lines_.size());
  for (const Line& l : lines_) {
    s.u64(l.tag);
    s.b(l.valid);
    s.b(l.dirty);
    s.u64(l.lru);
  }
  s.u64(lru_clock_);
  s.u64(hits_);
  s.u64(misses_);
  s.u64(writebacks_);
  mshrs_.save_state(s);
  s.end_chunk();
}

void Cache::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("CACH");
  if (d.u64() != lines_.size()) {
    throw ckpt::CkptError("cache geometry mismatch");
  }
  valid_count_ = 0;
  for (Line& l : lines_) {
    l.tag = d.u64();
    l.valid = d.b();
    l.dirty = d.b();
    l.lru = d.u64();
    if (l.valid) ++valid_count_;
  }
  lru_clock_ = d.u64();
  hits_ = d.u64();
  misses_ = d.u64();
  writebacks_ = d.u64();
  mshrs_.load_state(d);
  d.end_chunk();
}

}  // namespace unsync::mem
