// Set-associative cache tag array with LRU replacement, plus an MSHR file.
//
// The timing model is a latency calculator: callers present an address and
// the current cycle; the cache reports hit/miss, manages line state
// (valid/dirty), and the MSHR file bounds outstanding misses and merges
// secondary misses to an in-flight line. Data values are not stored — data
// correctness is the functional simulator's concern; this class models
// *time and state*, which is what the paper's experiments measure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "fault/avf.hpp"
#include "mem/config.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::mem {

/// Outstanding-miss registers. Bounds miss-level parallelism and merges
/// repeat misses to the same line onto the existing in-flight entry.
class MshrFile {
 public:
  explicit MshrFile(std::uint32_t entries) : entries_(entries) {}

  /// If `line_addr` already has an in-flight miss, returns its completion
  /// cycle (secondary miss: no new request needed).
  std::optional<Cycle> in_flight(Addr line_addr, Cycle now) const;

  /// Earliest cycle at or after `now` at which a free MSHR exists.
  Cycle first_free(Cycle now) const;

  /// Registers a new miss that completes at `done`. Caller must have
  /// ensured a free entry via first_free().
  void allocate(Addr line_addr, Cycle now, Cycle done);

  /// ACE residency hook (fault/avf.hpp): each allocated MSHR is charged its
  /// lifetime [now, done) as entry-cycles. Observation only; null detaches.
  void set_avf(fault::ResidencyTracker* avf) { avf_ = avf; }

  std::uint32_t capacity() const { return entries_; }
  std::uint32_t occupancy(Cycle now) const;

  /// Cycles callers spent blocked on a full MSHR file (stat).
  Cycle stall_cycles() const { return stall_cycles_; }
  void add_stall(Cycle c) { stall_cycles_ += c; }

  void reset() { misses_.clear(); stall_cycles_ = 0; }

  /// Checkpoint hooks (in-flight misses including lazily-expired entries,
  /// stall counter). Capacity must match the saved instance.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  struct Entry {
    Addr line_addr;
    Cycle done;
  };
  std::uint32_t entries_;
  mutable std::vector<Entry> misses_;  // expired entries pruned lazily
  Cycle stall_cycles_ = 0;
  fault::ResidencyTracker* avf_ = nullptr;  // observability; not checkpointed

  void prune(Cycle now) const;
};

/// Result of a tag-array lookup-and-update.
struct LookupResult {
  bool hit = false;
  /// On insert with eviction of a dirty line: its line address (needs a
  /// write-back to the next level).
  std::optional<Addr> dirty_victim;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  Addr line_addr(Addr addr) const { return addr & ~Addr{config_.line_bytes - 1}; }

  /// Probe without side effects.
  bool contains(Addr addr) const;
  bool line_dirty(Addr addr) const;

  /// Access for a read: on hit updates LRU; on miss inserts the line
  /// (evicting LRU) and reports any dirty victim.
  LookupResult access_read(Addr addr);

  /// Access for a write. Under write-back, a hit (or allocated miss) marks
  /// the line dirty. Under write-through the line is never marked dirty and
  /// a write miss does not allocate (no-write-allocate, the conventional
  /// pairing the paper's write-through L1 uses).
  LookupResult access_write(Addr addr);

  /// Invalidates a single line (returns true if it was present).
  bool invalidate(Addr addr);
  /// Invalidates everything (recovery: "invalidate both the cache lines").
  void invalidate_all();

  std::uint64_t lines_valid() const { return valid_count_; }
  std::uint64_t lines_dirty() const;

  /// Tag-array bits held per valid line: the tag itself plus valid+dirty
  /// state (the strike surface of a tag-array upset — an LRU flip only
  /// perturbs replacement, never correctness).
  std::uint32_t tag_entry_bits() const {
    return 64 - line_shift_ - set_shift_ + 2;
  }

  /// ACE residency hooks (fault/avf.hpp): integrate the valid-line count
  /// over cycles for the tag array and (where wired — the shared L2) the
  /// data array, whose per-entry bits are line_bytes*8. Call after any
  /// access/invalidate with the current cycle; observation only, null
  /// trackers = one branch each.
  void set_avf(fault::ResidencyTracker* avf) { avf_ = avf; }
  void set_data_avf(fault::ResidencyTracker* avf) { data_avf_ = avf; }
  void avf_update(Cycle now) {
    if (avf_) avf_->set_live(now, valid_count_);
    if (data_avf_) data_avf_->set_live(now, valid_count_);
  }

  // Statistics.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  double miss_rate() const;

  MshrFile& mshrs() { return mshrs_; }
  const MshrFile& mshrs() const { return mshrs_; }

  /// Checkpoint hooks: tag array, LRU clock, statistics and the MSHR file.
  /// Geometry (sets/assoc/line size) must match the saved instance.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // smaller = older
  };

  std::size_t set_index(Addr addr) const;
  Addr tag_of(Addr addr) const;
  LookupResult lookup(Addr addr, bool is_write);

  CacheConfig config_;
  // Hot-path shift/mask forms of the power-of-two geometry: lookup() runs
  // once per simulated memory access, so the divisions in set_index/tag_of
  // are folded into one shift each.
  unsigned line_shift_ = 0;  // log2(line_bytes)
  unsigned set_shift_ = 0;   // log2(num_sets)
  Addr set_mask_ = 0;        // num_sets - 1
  std::vector<Line> lines_;  // sets * assoc, row-major by set
  std::uint64_t lru_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t valid_count_ = 0;  // incremental lines_valid()
  MshrFile mshrs_;
  // Observability; not checkpointed.
  fault::ResidencyTracker* avf_ = nullptr;
  fault::ResidencyTracker* data_avf_ = nullptr;
};

}  // namespace unsync::mem
