// The URISC mini instruction set.
//
// A 32-bit fixed-width RISC ISA with 32 integer and 32 floating-point
// registers, rich enough to express real kernels (the examples assemble and
// run sorting, checksum and stencil programs) while staying small enough to
// simulate fast. Serializing instructions (SYSCALL, MEMBAR) exist explicitly
// because the paper's Figure 4 hinges on their frequency.
//
// Encoding (32 bits):
//   R-type:  op[31:24] rd[23:19] rs1[18:14] rs2[13:9]  pad[8:0]
//   I-type:  op[31:24] rd[23:19] rs1[18:14] imm14[13:0]   (sign-extended)
//   B-type:  op[31:24] rs1[23:19] rs2[18:14] imm14[13:0]  (inst offset)
//   J-type:  op[31:24] rd[23:19] imm19[18:0]              (inst offset)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace unsync::isa {

enum class Opcode : std::uint8_t {
  // R-type integer ALU.
  kAdd, kSub, kAnd, kOr, kXor, kSlt, kSll, kSrl, kSra,
  // R-type integer multiply / divide.
  kMul, kDiv, kRem,
  // I-type integer ALU.
  kAddi, kAndi, kOri, kXori, kSlti, kSlli, kSrli, kLui,
  // Memory (I-type addressing: rs1 + imm).
  kLd, kSt, kLb, kSb,
  // Floating point (R-type on f-registers; kFld/kFst use I-type addressing).
  kFadd, kFsub, kFmul, kFdiv, kFld, kFst, kFmovi, kFcmplt,
  // Control flow.
  kBeq, kBne, kBlt, kBge, kJal, kJalr,
  // Serializing instructions.
  kSyscall, kMembar,
  kHalt,
  kCount,
};

/// Broad functional class used by the timing model to choose a functional
/// unit and latency; derived from the opcode.
enum class InstClass : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMul,
  kFpDiv,
  kLoad,
  kStore,
  kBranch,
  kSerializing,
  kHalt,
};

InstClass class_of(Opcode op);
const char* name_of(Opcode op);
const char* name_of(InstClass c);

/// Looks up an opcode by its assembler mnemonic (lower case).
std::optional<Opcode> opcode_from_name(const std::string& mnemonic);

/// Decoded instruction. Register fields are 0..31; fp instructions index the
/// f-register file with the same 5-bit fields.
struct Inst {
  Opcode op = Opcode::kHalt;
  RegIndex rd = 0;
  RegIndex rs1 = 0;
  RegIndex rs2 = 0;
  std::int32_t imm = 0;

  bool operator==(const Inst&) const = default;

  bool is_branch() const { return class_of(op) == InstClass::kBranch; }
  bool is_load() const { return class_of(op) == InstClass::kLoad; }
  bool is_store() const { return class_of(op) == InstClass::kStore; }
  bool is_serializing() const {
    return class_of(op) == InstClass::kSerializing;
  }

  /// True when the instruction writes an (integer or fp) destination register.
  bool writes_reg() const;
  /// Number of source register operands actually read (0..2).
  int num_srcs() const;

  /// For stores, the register holding the data to write (kept in the rd
  /// field slot of the I-type encoding).
  RegIndex store_data_reg() const { return rd; }

  std::string to_string() const;
};

/// Encodes to the 32-bit machine word. Immediates out of field range throw
/// std::out_of_range (the assembler surfaces this as a source error).
std::uint32_t encode(const Inst& inst);

/// Decodes a machine word. Unknown opcode bytes decode to kHalt so that a
/// corrupted instruction stream fails safe rather than invoking UB.
Inst decode(std::uint32_t word);

/// Field range limits used by encode() and the assembler's diagnostics.
inline constexpr std::int32_t kImm14Min = -(1 << 13);
inline constexpr std::int32_t kImm14Max = (1 << 13) - 1;
inline constexpr std::int32_t kImm19Min = -(1 << 18);
inline constexpr std::int32_t kImm19Max = (1 << 18) - 1;

}  // namespace unsync::isa
