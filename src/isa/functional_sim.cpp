#include "isa/functional_sim.hpp"

#include <bit>
#include <cstring>

namespace unsync::isa {

SparseMemory& SparseMemory::operator=(const SparseMemory& other) {
  if (this == &other) return *this;
  pages_.clear();
  for (const auto& [idx, page] : other.pages_) {
    pages_[idx] = std::make_unique<Page>(*page);
  }
  return *this;
}

const SparseMemory::Page* SparseMemory::page_for(Addr addr) const {
  const auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

SparseMemory::Page& SparseMemory::page_for_write(Addr addr) {
  auto& slot = pages_[addr >> kPageBits];
  if (!slot) slot = std::make_unique<Page>(Page{});
  return *slot;
}

std::uint8_t SparseMemory::read8(Addr addr) const {
  const Page* p = page_for(addr);
  return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

void SparseMemory::write8(Addr addr, std::uint8_t value) {
  page_for_write(addr)[addr & (kPageSize - 1)] = value;
}

std::uint64_t SparseMemory::read64(Addr addr) const {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) | read8(addr + static_cast<Addr>(b));
  }
  return v;
}

void SparseMemory::write64(Addr addr, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    write8(addr + static_cast<Addr>(b), static_cast<std::uint8_t>(value >> (8 * b)));
  }
}

void SparseMemory::load_image(Addr base, const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    write8(base + i, bytes[i]);
  }
}

bool SparseMemory::operator==(const SparseMemory& other) const {
  // Pages absent on one side must be all-zero on the other.
  auto covered = [](const SparseMemory& a, const SparseMemory& b) {
    for (const auto& [idx, page] : a.pages_) {
      const Page* q = nullptr;
      if (const auto it = b.pages_.find(idx); it != b.pages_.end()) {
        q = it->second.get();
      }
      for (std::size_t i = 0; i < kPageSize; ++i) {
        const std::uint8_t lhs = (*page)[i];
        const std::uint8_t rhs = q ? (*q)[i] : 0;
        if (lhs != rhs) return false;
      }
    }
    return true;
  };
  return covered(*this, other) && covered(other, *this);
}

FunctionalSim::FunctionalSim(const Program& program) : program_(program) {
  state_.pc = program_.code_base;
  mem_.load_image(program_.data_base, program_.data);
}

Inst FunctionalSim::fetch(Addr pc) const {
  if (pc < program_.code_base || pc >= program_.code_end() ||
      (pc - program_.code_base) % 4 != 0) {
    return Inst{};  // halt outside the image: fail safe
  }
  return program_.code[(pc - program_.code_base) / 4];
}

std::uint64_t FunctionalSim::run(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (n < max_steps && !halted_) {
    step();
    ++n;
  }
  return n;
}

StepResult FunctionalSim::step() {
  StepResult r;
  r.pc = state_.pc;
  if (halted_) {
    r.halted = true;
    r.next_pc = state_.pc;
    return r;
  }
  const Inst inst = fetch(state_.pc);
  r.inst = inst;
  Addr next_pc = state_.pc + 4;

  auto& regs = state_.regs;
  auto& fregs = state_.fregs;
  auto rs1 = [&] { return regs[inst.rs1]; };
  auto rs2 = [&] { return regs[inst.rs2]; };
  auto srs1 = [&] { return static_cast<std::int64_t>(regs[inst.rs1]); };
  auto srs2 = [&] { return static_cast<std::int64_t>(regs[inst.rs2]); };
  auto f1 = [&] { return std::bit_cast<double>(fregs[inst.rs1]); };
  auto f2 = [&] { return std::bit_cast<double>(fregs[inst.rs2]); };
  auto wr = [&](std::uint64_t v) {
    if (inst.rd != 0) regs[inst.rd] = v;
    r.result = inst.rd != 0 ? v : 0;
  };
  auto wf = [&](double v) {
    fregs[inst.rd] = std::bit_cast<std::uint64_t>(v);
    r.result = fregs[inst.rd];
  };
  // Branch targets are in instruction slots relative to the branch itself.
  auto branch_to = [&](std::int32_t slots) {
    next_pc = state_.pc + static_cast<Addr>(static_cast<std::int64_t>(slots) * 4);
    r.taken = true;
  };

  switch (inst.op) {
    case Opcode::kAdd: wr(rs1() + rs2()); break;
    case Opcode::kSub: wr(rs1() - rs2()); break;
    case Opcode::kAnd: wr(rs1() & rs2()); break;
    case Opcode::kOr: wr(rs1() | rs2()); break;
    case Opcode::kXor: wr(rs1() ^ rs2()); break;
    case Opcode::kSlt: wr(srs1() < srs2() ? 1 : 0); break;
    case Opcode::kSll: wr(rs1() << (rs2() & 63)); break;
    case Opcode::kSrl: wr(rs1() >> (rs2() & 63)); break;
    case Opcode::kSra:
      wr(static_cast<std::uint64_t>(srs1() >> (rs2() & 63)));
      break;
    case Opcode::kMul: wr(rs1() * rs2()); break;
    case Opcode::kDiv:
      // Division by zero returns all-ones, mirroring RISC-V semantics.
      wr(rs2() == 0 ? ~std::uint64_t{0}
                    : static_cast<std::uint64_t>(srs1() / srs2()));
      break;
    case Opcode::kRem:
      wr(rs2() == 0 ? rs1() : static_cast<std::uint64_t>(srs1() % srs2()));
      break;
    case Opcode::kAddi:
      wr(rs1() + static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm)));
      break;
    // Logical immediates are zero-extended (MIPS convention), which lets
    // the `la` pseudo-instruction build full addresses with lui+ori.
    case Opcode::kAndi:
      wr(rs1() & (static_cast<std::uint64_t>(inst.imm) & 0x3fff));
      break;
    case Opcode::kOri:
      wr(rs1() | (static_cast<std::uint64_t>(inst.imm) & 0x3fff));
      break;
    case Opcode::kXori:
      wr(rs1() ^ (static_cast<std::uint64_t>(inst.imm) & 0x3fff));
      break;
    case Opcode::kSlti:
      wr(srs1() < static_cast<std::int64_t>(inst.imm) ? 1 : 0);
      break;
    case Opcode::kSlli: wr(rs1() << (inst.imm & 63)); break;
    case Opcode::kSrli: wr(rs1() >> (inst.imm & 63)); break;
    case Opcode::kLui:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.imm)) << 14);
      break;
    case Opcode::kLd:
      r.mem_addr = rs1() + static_cast<Addr>(static_cast<std::int64_t>(inst.imm));
      wr(mem_.read64(r.mem_addr));
      break;
    case Opcode::kLb:
      r.mem_addr = rs1() + static_cast<Addr>(static_cast<std::int64_t>(inst.imm));
      wr(mem_.read8(r.mem_addr));
      break;
    case Opcode::kSt:
      r.mem_addr = rs1() + static_cast<Addr>(static_cast<std::int64_t>(inst.imm));
      mem_.write64(r.mem_addr, regs[inst.store_data_reg()]);
      break;
    case Opcode::kSb:
      r.mem_addr = rs1() + static_cast<Addr>(static_cast<std::int64_t>(inst.imm));
      mem_.write8(r.mem_addr,
                  static_cast<std::uint8_t>(regs[inst.store_data_reg()]));
      break;
    case Opcode::kFadd: wf(f1() + f2()); break;
    case Opcode::kFsub: wf(f1() - f2()); break;
    case Opcode::kFmul: wf(f1() * f2()); break;
    case Opcode::kFdiv: wf(f1() / f2()); break;
    case Opcode::kFld:
      r.mem_addr = rs1() + static_cast<Addr>(static_cast<std::int64_t>(inst.imm));
      fregs[inst.rd] = mem_.read64(r.mem_addr);
      r.result = fregs[inst.rd];
      break;
    case Opcode::kFst:
      r.mem_addr = rs1() + static_cast<Addr>(static_cast<std::int64_t>(inst.imm));
      mem_.write64(r.mem_addr, fregs[inst.store_data_reg()]);
      break;
    case Opcode::kFmovi:
      wf(static_cast<double>(srs1()));
      break;
    case Opcode::kFcmplt: wr(f1() < f2() ? 1 : 0); break;
    case Opcode::kBeq: if (rs1() == rs2()) branch_to(inst.imm); break;
    case Opcode::kBne: if (rs1() != rs2()) branch_to(inst.imm); break;
    case Opcode::kBlt: if (srs1() < srs2()) branch_to(inst.imm); break;
    case Opcode::kBge: if (srs1() >= srs2()) branch_to(inst.imm); break;
    case Opcode::kJal:
      wr(state_.pc + 4);
      branch_to(inst.imm);
      break;
    case Opcode::kJalr: {
      const Addr target = rs1();
      wr(state_.pc + 4);
      next_pc = target;
      r.taken = true;
      break;
    }
    case Opcode::kSyscall:
      // Mini ABI: r1 selects the service; service 1 emits r2 on the output
      // channel. Unknown services are no-ops (still serializing for timing).
      if (regs[1] == 1) output_.push_back(regs[2]);
      break;
    case Opcode::kMembar:
      break;  // purely a timing fence
    case Opcode::kHalt:
      halted_ = true;
      r.halted = true;
      next_pc = state_.pc;
      break;
    case Opcode::kCount:
      break;  // unreachable: decode never produces kCount
  }

  state_.pc = next_pc;
  r.next_pc = next_pc;
  if (!r.halted) ++retired_;
  return r;
}

}  // namespace unsync::isa
