#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>

namespace unsync::isa {
namespace {

struct Token {
  std::string text;
};

std::string strip(const std::string& s) {
  auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Splits "r1, 8(r2)" style operand lists on commas, trimming whitespace.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = strip(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_reg(const std::string& tok, RegIndex* out) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'f')) return false;
  int v = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return false;
    v = v * 10 + (tok[i] - '0');
  }
  if (v < 0 || v > 31) return false;
  *out = static_cast<RegIndex>(v);
  return true;
}

bool parse_int(const std::string& tok, std::int64_t* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  if (tok[0] == '-') {
    const long long v = std::strtoll(tok.c_str(), &end, 0);
    if (errno != 0 || end != tok.c_str() + tok.size()) return false;
    *out = v;
  } else {
    // Unsigned parse so full-width 64-bit .word literals round-trip.
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 0);
    if (errno != 0 || end != tok.c_str() + tok.size()) return false;
    *out = static_cast<std::int64_t>(v);
  }
  return true;
}

/// Parses "imm(reg)" memory operands.
bool parse_mem_operand(const std::string& tok, std::int64_t* imm,
                       RegIndex* base) {
  const auto open = tok.find('(');
  const auto close = tok.find(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return false;
  }
  const std::string imm_part = strip(tok.substr(0, open));
  const std::string reg_part = strip(tok.substr(open + 1, close - open - 1));
  if (imm_part.empty()) {
    *imm = 0;
  } else if (!parse_int(imm_part, imm)) {
    return false;
  }
  return parse_reg(reg_part, base);
}

struct PendingLabelRef {
  std::size_t inst_index;
  std::string label;
  int line;
  bool j_type;  // true => 19-bit field, false => 14-bit field
};

}  // namespace

Program Assembler::assemble(const std::string& source) {
  Program prog;
  std::map<std::string, std::size_t> code_labels;   // label -> inst index
  std::map<std::string, std::uint64_t> data_labels; // label -> data offset
  std::vector<PendingLabelRef> fixups;

  std::istringstream in(source);
  std::string raw;
  int lineno = 0;
  // Labels bind to whatever is emitted next: an instruction binds them to
  // the code index, a data directive to the data offset. This lets code and
  // data interleave freely without explicit sections.
  std::vector<std::string> pending_labels;
  auto bind_pending_to_code = [&] {
    for (auto& l : pending_labels) code_labels[l] = prog.code.size();
    pending_labels.clear();
  };
  auto bind_pending_to_data = [&] {
    for (auto& l : pending_labels) data_labels[l] = prog.data.size();
    pending_labels.clear();
  };

  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = strip(line);
    if (line.empty()) continue;

    // Leading labels (possibly several on one line).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string head = strip(line.substr(0, colon));
      // A ':' inside an operand (shouldn't occur) — treat as syntax error.
      if (head.find_first_of(" \t,()") != std::string::npos) {
        throw AsmError{lineno, "malformed label '" + head + "'"};
      }
      if (head.empty()) throw AsmError{lineno, "empty label"};
      pending_labels.push_back(head);
      line = strip(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Split mnemonic and operand tail.
    std::string mnemonic = line;
    std::string tail;
    if (const auto sp = line.find_first_of(" \t"); sp != std::string::npos) {
      mnemonic = line.substr(0, sp);
      tail = strip(line.substr(sp + 1));
    }
    mnemonic = lower(mnemonic);

    // Data directives.
    if (mnemonic == ".word") {
      bind_pending_to_data();
      for (const auto& op : split_operands(tail)) {
        std::int64_t v = 0;
        if (!parse_int(op, &v)) {
          throw AsmError{lineno, "bad .word value '" + op + "'"};
        }
        for (int b = 0; b < 8; ++b) {
          prog.data.push_back(
              static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * b)));
        }
      }
      continue;
    }
    if (mnemonic == ".space") {
      bind_pending_to_data();
      std::int64_t n = 0;
      if (!parse_int(tail, &n) || n < 0) {
        throw AsmError{lineno, "bad .space size '" + tail + "'"};
      }
      prog.data.insert(prog.data.end(), static_cast<std::size_t>(n), 0);
      continue;
    }
    if (mnemonic == ".align") {
      bind_pending_to_data();
      std::int64_t a = 0;
      if (!parse_int(tail, &a) || a <= 0) {
        throw AsmError{lineno, "bad .align value '" + tail + "'"};
      }
      while (prog.data.size() % static_cast<std::size_t>(a) != 0) {
        prog.data.push_back(0);
      }
      continue;
    }
    if (mnemonic == ".byte") {
      bind_pending_to_data();
      for (const auto& op : split_operands(tail)) {
        std::int64_t v = 0;
        if (!parse_int(op, &v) || v < -128 || v > 255) {
          throw AsmError{lineno, "bad .byte value '" + op + "'"};
        }
        prog.data.push_back(static_cast<std::uint8_t>(v));
      }
      continue;
    }
    if (mnemonic == ".ascii") {
      bind_pending_to_data();
      // Operand is a double-quoted string; \n and \0 escapes supported.
      const auto open_q = tail.find('"');
      const auto close_q = tail.rfind('"');
      if (open_q == std::string::npos || close_q <= open_q) {
        throw AsmError{lineno, ".ascii expects a quoted string"};
      }
      const std::string body = tail.substr(open_q + 1, close_q - open_q - 1);
      for (std::size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c == '\\' && i + 1 < body.size()) {
          ++i;
          switch (body[i]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            default:
              throw AsmError{lineno, std::string("bad escape '\\") +
                                         body[i] + "' in .ascii"};
          }
        }
        prog.data.push_back(static_cast<std::uint8_t>(c));
      }
      continue;
    }
    if (!mnemonic.empty() && mnemonic[0] == '.') {
      throw AsmError{lineno, "unknown directive '" + mnemonic + "'"};
    }

    // Simple pseudo-instructions that expand to one real instruction.
    //   nop             -> add r0, r0, r0
    //   mv   rd, rs     -> add rd, rs, r0
    //   li   rd, imm    -> addi rd, r0, imm   (14-bit range)
    //   j    label      -> jal r0, label
    //   ret             -> jalr r0, r31
    if (mnemonic == "nop" || mnemonic == "mv" || mnemonic == "li" ||
        mnemonic == "j" || mnemonic == "ret") {
      bind_pending_to_code();
      const auto ops = split_operands(tail);
      Inst inst;
      if (mnemonic == "nop") {
        if (!ops.empty()) throw AsmError{lineno, "nop takes no operands"};
        inst.op = Opcode::kAdd;
      } else if (mnemonic == "mv") {
        if (ops.size() != 2) throw AsmError{lineno, "mv expects 2 operands"};
        inst.op = Opcode::kAdd;
        if (!parse_reg(ops[0], &inst.rd) || !parse_reg(ops[1], &inst.rs1)) {
          throw AsmError{lineno, "bad register in mv"};
        }
      } else if (mnemonic == "li") {
        if (ops.size() != 2) throw AsmError{lineno, "li expects 2 operands"};
        inst.op = Opcode::kAddi;
        std::int64_t v = 0;
        if (!parse_reg(ops[0], &inst.rd) || !parse_int(ops[1], &v)) {
          throw AsmError{lineno, "bad operands in li"};
        }
        inst.imm = static_cast<std::int32_t>(v);
      } else if (mnemonic == "j") {
        if (ops.size() != 1) throw AsmError{lineno, "j expects 1 operand"};
        inst.op = Opcode::kJal;
        inst.rd = 0;
        std::int64_t v = 0;
        if (parse_int(ops[0], &v)) {
          inst.imm = static_cast<std::int32_t>(v);
        } else {
          fixups.push_back({prog.code.size(), ops[0], lineno, true});
        }
      } else {  // ret
        if (!ops.empty()) throw AsmError{lineno, "ret takes no operands"};
        inst.op = Opcode::kJalr;
        inst.rd = 0;
        inst.rs1 = 31;
      }
      prog.code.push_back(inst);
      continue;
    }

    // Pseudo-instruction: la rd, <data-label|integer> expands to lui+ori.
    // Data labels must be defined before use. The low half is encoded as a
    // signed 14-bit field; ori zero-extends it at execution.
    if (mnemonic == "la") {
      bind_pending_to_code();
      const auto ops = split_operands(tail);
      if (ops.size() != 2) {
        throw AsmError{lineno, "la expects 2 operands"};
      }
      RegIndex rd;
      if (!parse_reg(ops[0], &rd)) {
        throw AsmError{lineno, "bad register '" + ops[0] + "'"};
      }
      std::int64_t addr = 0;
      if (!parse_int(ops[1], &addr)) {
        const auto it = data_labels.find(ops[1]);
        if (it == data_labels.end()) {
          throw AsmError{lineno, "undefined data label '" + ops[1] + "'"};
        }
        addr = static_cast<std::int64_t>(prog.data_base + it->second);
      }
      const auto hi = static_cast<std::int32_t>(addr >> 14);
      const auto lo14 = static_cast<std::uint32_t>(addr) & 0x3fffu;
      const auto lo_signed =
          static_cast<std::int32_t>((lo14 ^ 0x2000u)) - 0x2000;
      prog.code.push_back(
          {.op = Opcode::kLui, .rd = rd, .rs1 = 0, .rs2 = 0, .imm = hi});
      prog.code.push_back({.op = Opcode::kOri, .rd = rd, .rs1 = rd, .rs2 = 0,
                           .imm = lo_signed});
      continue;
    }

    const auto op = opcode_from_name(mnemonic);
    if (!op) throw AsmError{lineno, "unknown mnemonic '" + mnemonic + "'"};
    bind_pending_to_code();

    Inst inst;
    inst.op = *op;
    const auto ops = split_operands(tail);
    const InstClass cls = class_of(*op);

    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AsmError{lineno, mnemonic + " expects " + std::to_string(n) +
                                   " operands, got " +
                                   std::to_string(ops.size())};
      }
    };
    auto reg = [&](std::size_t i) {
      RegIndex r;
      if (!parse_reg(ops[i], &r)) {
        throw AsmError{lineno, "bad register '" + ops[i] + "'"};
      }
      return r;
    };
    auto imm_or_label = [&](std::size_t i, bool j_type) -> std::int32_t {
      std::int64_t v = 0;
      if (parse_int(ops[i], &v)) return static_cast<std::int32_t>(v);
      fixups.push_back({prog.code.size(), ops[i], lineno, j_type});
      return 0;  // patched in pass 2
    };

    switch (cls) {
      case InstClass::kIntAlu:
      case InstClass::kIntMul:
      case InstClass::kIntDiv:
      case InstClass::kFpAlu:
      case InstClass::kFpMul:
      case InstClass::kFpDiv: {
        if (*op == Opcode::kLui) {
          need(2);
          inst.rd = reg(0);
          std::int64_t v = 0;
          if (!parse_int(ops[1], &v)) {
            throw AsmError{lineno, "bad immediate '" + ops[1] + "'"};
          }
          inst.imm = static_cast<std::int32_t>(v);
        } else if (*op == Opcode::kAddi || *op == Opcode::kAndi ||
                   *op == Opcode::kOri || *op == Opcode::kXori ||
                   *op == Opcode::kSlti || *op == Opcode::kSlli ||
                   *op == Opcode::kSrli) {
          need(3);
          inst.rd = reg(0);
          inst.rs1 = reg(1);
          std::int64_t v = 0;
          if (!parse_int(ops[2], &v)) {
            // Allow `addi rd, r0, label` to materialise a data address.
            const auto it = data_labels.find(ops[2]);
            if (it == data_labels.end()) {
              throw AsmError{lineno, "bad immediate '" + ops[2] + "'"};
            }
            v = static_cast<std::int64_t>(prog.data_base + it->second);
          }
          inst.imm = static_cast<std::int32_t>(v);
        } else if (*op == Opcode::kFmovi) {
          need(2);
          inst.rd = reg(0);
          inst.rs1 = reg(1);
        } else {
          need(3);
          inst.rd = reg(0);
          inst.rs1 = reg(1);
          inst.rs2 = reg(2);
        }
        break;
      }
      case InstClass::kLoad:
      case InstClass::kStore: {
        need(2);
        inst.rd = reg(0);  // data register for stores, dest for loads
        std::int64_t imm = 0;
        RegIndex base = 0;
        if (!parse_mem_operand(ops[1], &imm, &base)) {
          throw AsmError{lineno, "bad memory operand '" + ops[1] + "'"};
        }
        inst.rs1 = base;
        inst.imm = static_cast<std::int32_t>(imm);
        break;
      }
      case InstClass::kBranch: {
        if (*op == Opcode::kJal) {
          need(2);
          inst.rd = reg(0);
          inst.imm = imm_or_label(1, /*j_type=*/true);
        } else if (*op == Opcode::kJalr) {
          need(2);
          inst.rd = reg(0);
          inst.rs1 = reg(1);
        } else {
          need(3);
          inst.rs1 = reg(0);
          inst.rs2 = reg(1);
          inst.imm = imm_or_label(2, /*j_type=*/false);
        }
        break;
      }
      case InstClass::kSerializing:
      case InstClass::kHalt:
        need(0);
        break;
    }

    prog.code.push_back(inst);
  }

  bind_pending_to_code();  // trailing labels point at the code end

  // Pass 2: patch label references as pc-relative instruction offsets.
  for (const auto& fix : fixups) {
    const auto it = code_labels.find(fix.label);
    if (it == code_labels.end()) {
      throw AsmError{fix.line, "undefined label '" + fix.label + "'"};
    }
    const auto delta = static_cast<std::int64_t>(it->second) -
                       static_cast<std::int64_t>(fix.inst_index);
    const std::int32_t lo = fix.j_type ? kImm19Min : kImm14Min;
    const std::int32_t hi = fix.j_type ? kImm19Max : kImm14Max;
    if (delta < lo || delta > hi) {
      throw AsmError{fix.line, "branch to '" + fix.label + "' out of range"};
    }
    prog.code[fix.inst_index].imm = static_cast<std::int32_t>(delta);
  }

  // Validate every encodable immediate now so later encode() cannot throw.
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    try {
      (void)encode(prog.code[i]);
    } catch (const std::out_of_range& e) {
      throw AsmError{0, "instruction " + std::to_string(i) + ": " + e.what()};
    }
  }
  return prog;
}

}  // namespace unsync::isa
