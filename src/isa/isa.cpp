#include "isa/isa.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace unsync::isa {
namespace {

struct OpInfo {
  const char* name;
  InstClass cls;
  enum class Fmt { kR, kI, kB, kJ, kNone } fmt;
};

using Fmt = OpInfo::Fmt;

constexpr std::array<OpInfo, static_cast<std::size_t>(Opcode::kCount)> kOps = {{
    {"add", InstClass::kIntAlu, Fmt::kR},
    {"sub", InstClass::kIntAlu, Fmt::kR},
    {"and", InstClass::kIntAlu, Fmt::kR},
    {"or", InstClass::kIntAlu, Fmt::kR},
    {"xor", InstClass::kIntAlu, Fmt::kR},
    {"slt", InstClass::kIntAlu, Fmt::kR},
    {"sll", InstClass::kIntAlu, Fmt::kR},
    {"srl", InstClass::kIntAlu, Fmt::kR},
    {"sra", InstClass::kIntAlu, Fmt::kR},
    {"mul", InstClass::kIntMul, Fmt::kR},
    {"div", InstClass::kIntDiv, Fmt::kR},
    {"rem", InstClass::kIntDiv, Fmt::kR},
    {"addi", InstClass::kIntAlu, Fmt::kI},
    {"andi", InstClass::kIntAlu, Fmt::kI},
    {"ori", InstClass::kIntAlu, Fmt::kI},
    {"xori", InstClass::kIntAlu, Fmt::kI},
    {"slti", InstClass::kIntAlu, Fmt::kI},
    {"slli", InstClass::kIntAlu, Fmt::kI},
    {"srli", InstClass::kIntAlu, Fmt::kI},
    {"lui", InstClass::kIntAlu, Fmt::kI},
    {"ld", InstClass::kLoad, Fmt::kI},
    {"st", InstClass::kStore, Fmt::kI},
    {"lb", InstClass::kLoad, Fmt::kI},
    {"sb", InstClass::kStore, Fmt::kI},
    {"fadd", InstClass::kFpAlu, Fmt::kR},
    {"fsub", InstClass::kFpAlu, Fmt::kR},
    {"fmul", InstClass::kFpMul, Fmt::kR},
    {"fdiv", InstClass::kFpDiv, Fmt::kR},
    {"fld", InstClass::kLoad, Fmt::kI},
    {"fst", InstClass::kStore, Fmt::kI},
    {"fmovi", InstClass::kFpAlu, Fmt::kR},
    {"fcmplt", InstClass::kFpAlu, Fmt::kR},
    {"beq", InstClass::kBranch, Fmt::kB},
    {"bne", InstClass::kBranch, Fmt::kB},
    {"blt", InstClass::kBranch, Fmt::kB},
    {"bge", InstClass::kBranch, Fmt::kB},
    {"jal", InstClass::kBranch, Fmt::kJ},
    {"jalr", InstClass::kBranch, Fmt::kI},
    {"syscall", InstClass::kSerializing, Fmt::kNone},
    {"membar", InstClass::kSerializing, Fmt::kNone},
    {"halt", InstClass::kHalt, Fmt::kNone},
}};

const OpInfo& info(Opcode op) {
  return kOps[static_cast<std::size_t>(op)];
}

std::int32_t sign_extend(std::uint32_t v, int bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  v &= (1u << bits) - 1;
  return static_cast<std::int32_t>((v ^ mask) - mask);
}

void check_imm(std::int32_t imm, std::int32_t lo, std::int32_t hi) {
  if (imm < lo || imm > hi) {
    throw std::out_of_range("immediate " + std::to_string(imm) +
                            " out of range [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + "]");
  }
}

}  // namespace

InstClass class_of(Opcode op) { return info(op).cls; }

const char* name_of(Opcode op) { return info(op).name; }

const char* name_of(InstClass c) {
  switch (c) {
    case InstClass::kIntAlu: return "int_alu";
    case InstClass::kIntMul: return "int_mul";
    case InstClass::kIntDiv: return "int_div";
    case InstClass::kFpAlu: return "fp_alu";
    case InstClass::kFpMul: return "fp_mul";
    case InstClass::kFpDiv: return "fp_div";
    case InstClass::kLoad: return "load";
    case InstClass::kStore: return "store";
    case InstClass::kBranch: return "branch";
    case InstClass::kSerializing: return "serializing";
    case InstClass::kHalt: return "halt";
  }
  return "?";
}

std::optional<Opcode> opcode_from_name(const std::string& mnemonic) {
  for (std::size_t i = 0; i < kOps.size(); ++i) {
    if (mnemonic == kOps[i].name) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

bool Inst::writes_reg() const {
  switch (info(op).fmt) {
    case Fmt::kR:
      // fcmplt writes an integer register; all other R-types write rd.
      return true;
    case Fmt::kI:
      // Stores use the I format but write memory, not a register.
      return !is_store();
    case Fmt::kJ:
      return true;  // jal writes the link register.
    case Fmt::kB:
    case Fmt::kNone:
      return false;
  }
  return false;
}

int Inst::num_srcs() const {
  switch (info(op).fmt) {
    case Fmt::kR: return 2;
    case Fmt::kI: return is_store() ? 2 : 1;  // store reads base + data.
    case Fmt::kB: return 2;
    case Fmt::kJ: return 0;
    case Fmt::kNone: return 0;
  }
  return 0;
}

std::string Inst::to_string() const {
  std::ostringstream os;
  os << name_of(op);
  switch (info(op).fmt) {
    case Fmt::kR:
      os << " r" << int{rd} << ", r" << int{rs1} << ", r" << int{rs2};
      break;
    case Fmt::kI:
      if (is_load() || is_store()) {
        // Stores keep their data register in the rd field slot.
        os << " r" << int{rd} << ", " << imm << "(r" << int{rs1} << ")";
      } else {
        os << " r" << int{rd} << ", r" << int{rs1} << ", " << imm;
      }
      break;
    case Fmt::kB:
      os << " r" << int{rs1} << ", r" << int{rs2} << ", " << imm;
      break;
    case Fmt::kJ:
      os << " r" << int{rd} << ", " << imm;
      break;
    case Fmt::kNone:
      break;
  }
  return os.str();
}

std::uint32_t encode(const Inst& inst) {
  const auto opbits = static_cast<std::uint32_t>(inst.op) << 24;
  switch (info(inst.op).fmt) {
    case Fmt::kR:
      return opbits | (std::uint32_t{inst.rd} << 19) |
             (std::uint32_t{inst.rs1} << 14) | (std::uint32_t{inst.rs2} << 9);
    case Fmt::kI:
      check_imm(inst.imm, kImm14Min, kImm14Max);
      return opbits | (std::uint32_t{inst.rd} << 19) |
             (std::uint32_t{inst.rs1} << 14) |
             (static_cast<std::uint32_t>(inst.imm) & 0x3fffu);
    case Fmt::kB:
      check_imm(inst.imm, kImm14Min, kImm14Max);
      return opbits | (std::uint32_t{inst.rs1} << 19) |
             (std::uint32_t{inst.rs2} << 14) |
             (static_cast<std::uint32_t>(inst.imm) & 0x3fffu);
    case Fmt::kJ:
      check_imm(inst.imm, kImm19Min, kImm19Max);
      return opbits | (std::uint32_t{inst.rd} << 19) |
             (static_cast<std::uint32_t>(inst.imm) & 0x7ffffu);
    case Fmt::kNone:
      return opbits;
  }
  return opbits;
}

Inst decode(std::uint32_t word) {
  const auto opbyte = static_cast<std::uint8_t>(word >> 24);
  if (opbyte >= static_cast<std::uint8_t>(Opcode::kCount)) {
    return Inst{};  // fail safe: decodes as halt
  }
  Inst inst;
  inst.op = static_cast<Opcode>(opbyte);
  switch (info(inst.op).fmt) {
    case Fmt::kR:
      inst.rd = static_cast<RegIndex>((word >> 19) & 0x1f);
      inst.rs1 = static_cast<RegIndex>((word >> 14) & 0x1f);
      inst.rs2 = static_cast<RegIndex>((word >> 9) & 0x1f);
      break;
    case Fmt::kI:
      inst.rd = static_cast<RegIndex>((word >> 19) & 0x1f);
      inst.rs1 = static_cast<RegIndex>((word >> 14) & 0x1f);
      inst.imm = sign_extend(word, 14);
      break;
    case Fmt::kB:
      inst.rs1 = static_cast<RegIndex>((word >> 19) & 0x1f);
      inst.rs2 = static_cast<RegIndex>((word >> 14) & 0x1f);
      inst.imm = sign_extend(word, 14);
      break;
    case Fmt::kJ:
      inst.rd = static_cast<RegIndex>((word >> 19) & 0x1f);
      inst.imm = sign_extend(word, 19);
      break;
    case Fmt::kNone:
      break;
  }
  return inst;
}

}  // namespace unsync::isa
