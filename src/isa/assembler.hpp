// Two-pass assembler for the URISC mini ISA.
//
// Syntax (one statement per line, '#' starts a comment):
//   label:                     define a code label
//   add  r1, r2, r3            R-type
//   addi r1, r2, -5            I-type
//   ld   r1, 8(r2)             load  (st/sb/fld/fst use the same form)
//   beq  r1, r2, loop          branch to label (pc-relative, in instructions)
//   jal  r31, func             jump-and-link to label
//   .word 42                   emit a 64-bit data word into the data image
//   .space 128                 reserve zeroed data bytes
//   .align 8                   align the data cursor
//
// Data directives build a separate data image loaded at Program::data_base.
// Register names: r0..r31 (r0 reads as zero), f0..f31 for fp instructions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/isa.hpp"

namespace unsync::isa {

/// An assembled program: code image (decoded instructions, one per slot,
/// loaded at code_base) plus an initialised data image at data_base.
struct Program {
  std::vector<Inst> code;
  std::vector<std::uint8_t> data;
  Addr code_base = 0x1000;
  Addr data_base = 0x100000;

  Addr code_end() const { return code_base + code.size() * 4; }
};

/// Error with line number and message; thrown by Assembler::assemble.
struct AsmError {
  int line;
  std::string message;
  std::string what() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

class Assembler {
 public:
  /// Assembles source text into a Program. Throws AsmError on the first
  /// syntax or range error encountered.
  static Program assemble(const std::string& source);
};

}  // namespace unsync::isa
