// Architectural (functional) simulator for URISC programs.
//
// This is the golden-model executor: it defines what every instruction does,
// independent of timing. The timing model (src/cpu) replays its dynamic
// stream; the fault framework (src/fault) compares a corrupted run's final
// architectural state against this model's.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "isa/assembler.hpp"
#include "isa/isa.hpp"

namespace unsync::isa {

/// Sparse byte-addressable memory backed by 4 KiB pages allocated on first
/// touch. Reads of untouched memory return zero.
class SparseMemory {
 public:
  SparseMemory() = default;
  SparseMemory(const SparseMemory& other) { *this = other; }
  SparseMemory& operator=(const SparseMemory& other);
  SparseMemory(SparseMemory&&) = default;
  SparseMemory& operator=(SparseMemory&&) = default;

  std::uint8_t read8(Addr addr) const;
  void write8(Addr addr, std::uint8_t value);

  /// Little-endian 64-bit accesses; unaligned addresses are legal and are
  /// composed from byte accesses.
  std::uint64_t read64(Addr addr) const;
  void write64(Addr addr, std::uint64_t value);

  /// Copies a block into memory (program loading).
  void load_image(Addr base, const std::vector<std::uint8_t>& bytes);

  /// Number of pages currently allocated (test / footprint introspection).
  std::size_t pages_touched() const { return pages_.size(); }

  bool operator==(const SparseMemory& other) const;

 private:
  static constexpr Addr kPageBits = 12;
  static constexpr Addr kPageSize = Addr{1} << kPageBits;
  using Page = std::array<std::uint8_t, kPageSize>;

  const Page* page_for(Addr addr) const;
  Page& page_for_write(Addr addr);

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/// The architectural register state: 32 integer registers (r0 hardwired to
/// zero), 32 fp registers (IEEE-754 double bit patterns), and the PC.
struct ArchState {
  Addr pc = 0;
  std::array<std::uint64_t, 32> regs{};
  std::array<std::uint64_t, 32> fregs{};

  bool operator==(const ArchState&) const = default;
};

/// Everything observable about one retired instruction; consumed by the
/// trace recorder and by tests.
struct StepResult {
  Inst inst;
  Addr pc = 0;        ///< address of this instruction
  Addr next_pc = 0;   ///< architectural successor
  bool taken = false; ///< branch outcome (true also for jumps)
  Addr mem_addr = kNoAddr;  ///< effective address for loads/stores
  std::uint64_t result = 0; ///< value written to the destination register
  bool halted = false;
};

class FunctionalSim {
 public:
  explicit FunctionalSim(const Program& program);

  /// Retires exactly one instruction. Calling step() after HALT retires
  /// returns halted=true and changes nothing.
  StepResult step();

  /// Runs until HALT or max_steps, returning instructions retired.
  std::uint64_t run(std::uint64_t max_steps);

  bool halted() const { return halted_; }
  std::uint64_t retired() const { return retired_; }

  const ArchState& state() const { return state_; }
  ArchState& mutable_state() { return state_; }  ///< fault-injection hook
  const SparseMemory& memory() const { return mem_; }
  SparseMemory& mutable_memory() { return mem_; }

  /// Values the program emitted via `syscall` with r1==1 (value in r2) —
  /// the mini ABI's "print" channel used by the examples and tests.
  const std::vector<std::uint64_t>& output() const { return output_; }

  const Program& program() const { return program_; }

  /// Fetches the instruction at an arbitrary code address (kHalt outside
  /// the code image) — used by the timing front-end.
  Inst fetch(Addr pc) const;

 private:
  Program program_;
  ArchState state_;
  SparseMemory mem_;
  std::vector<std::uint64_t> output_;
  bool halted_ = false;
  std::uint64_t retired_ = 0;
};

}  // namespace unsync::isa
