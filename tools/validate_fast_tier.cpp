// Fast-tier validation harness (docs/TIERS.md).
//
// Runs every requested (benchmark x system) cell on both tiers and prints
// the fast tier's accuracy against the detailed truth: CPI relative error
// and the fault-arrival contract (errors_injected must match exactly —
// both tiers draw the identical schedule from the identical seed). Exit
// code 1 if any cell breaks the arrival contract; accuracy itself is NOT
// gated here (that is check_bench_regression.py --tier against the
// committed envelope in bench/BENCH_tier_baseline.json) — this tool is
// the exploratory/manual companion that shows the numbers per cell.
//
// Knobs (key=value, GNU --key=value also accepted by the CLI but this
// tool takes plain key=value only):
//   benches=<a,b,...>  comma list of profiles      (default: all of them)
//   systems=<a,b,...>  comma list of systems       (default: all of them)
//   insts=<N>          dynamic instructions/cell   (default 20000)
//   ser=<rate>         raw soft-error rate         (default 2e-4)
//   seed=<N>           workload + campaign seed    (default 42)
//   json=<path>        dump "unsync.tier_validation.v1" ("-" = stdout)
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "runtime/campaign.hpp"
#include "workload/profile.hpp"

namespace {

using namespace unsync;

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double cpi_of(const core::RunResult& r) {
  const double ipc = r.thread_ipc();
  return ipc > 0 ? 1.0 / ipc : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    const auto insts = static_cast<std::uint64_t>(cfg.get_int("insts", 20000));
    const double ser = cfg.get_double("ser", 2e-4);
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    const std::string json = cfg.get_string("json", "");

    std::vector<std::string> benches =
        split_list(cfg.get_string("benches", ""));
    if (benches.empty()) benches = workload::profile_names();

    std::vector<core::SystemKind> systems;
    for (const auto& name : split_list(cfg.get_string(
             "systems", "baseline,unsync,reunion,lockstep,checkpoint"))) {
      const auto kind = core::parse_system(name);
      if (!kind) throw std::invalid_argument("unknown system: " + name);
      systems.push_back(*kind);
    }
    cfg.report_unused("validate_fast_tier");

    TextTable t("Fast tier vs detailed (insts=" + std::to_string(insts) +
                " ser=" + std::to_string(ser) + ")");
    t.set_header({"benchmark", "system", "CPI det", "CPI fast", "rel err",
                  "errors det/fast", "schedule"});

    struct Row {
      std::string bench, system;
      double cpi_detailed, cpi_fast, cpi_rel_err;
      std::uint64_t errors_detailed, errors_fast;
      bool schedule_ok;
    };
    std::vector<Row> rows;
    bool all_ok = true;
    double worst = 0.0;

    for (const auto& bench : benches) {
      for (const auto kind : systems) {
        runtime::SimJob job;
        job.label = bench;
        job.profile = bench;
        job.system = kind;
        job.insts = insts;
        job.seed = seed;
        job.ser_per_inst = ser;

        const auto detailed = runtime::CampaignRunner::run_job(job, seed);
        job.params.tier = engine::Tier::kFast;
        const auto fast = runtime::CampaignRunner::run_job(job, seed);

        Row r;
        r.bench = bench;
        r.system = core::name_of(kind);
        r.cpi_detailed = cpi_of(detailed);
        r.cpi_fast = cpi_of(fast);
        r.cpi_rel_err =
            r.cpi_detailed > 0
                ? std::abs(r.cpi_fast - r.cpi_detailed) / r.cpi_detailed
                : 0.0;
        r.errors_detailed = detailed.errors_injected;
        r.errors_fast = fast.errors_injected;
        r.schedule_ok = r.errors_detailed == r.errors_fast;
        all_ok = all_ok && r.schedule_ok;
        worst = std::max(worst, r.cpi_rel_err);

        t.add_row({r.bench, r.system, TextTable::num(r.cpi_detailed, 3),
                   TextTable::num(r.cpi_fast, 3),
                   TextTable::pct(r.cpi_rel_err),
                   std::to_string(r.errors_detailed) + "/" +
                       std::to_string(r.errors_fast),
                   r.schedule_ok ? "ok" : "MISMATCH"});
        rows.push_back(std::move(r));
      }
    }
    t.print(std::cout);
    std::cout << "\nworst CPI relative error: " << TextTable::pct(worst)
              << "\nfault-arrival schedule: "
              << (all_ok ? "identical in every cell"
                         : "MISMATCH — the fast tier broke the contract")
              << "\n";

    if (!json.empty()) {
      std::ostringstream js;
      js << "{\n  \"schema\": \"unsync.tier_validation.v1\",\n"
         << "  \"insts\": " << insts << ",\n  \"ser\": " << ser
         << ",\n  \"seed\": " << seed << ",\n  \"worst_cpi_rel_err\": "
         << worst << ",\n  \"schedule_identical\": "
         << (all_ok ? "true" : "false") << ",\n  \"cells\": [\n";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        js << "    {\"bench\": \"" << r.bench << "\", \"system\": \""
           << r.system << "\", \"cpi_detailed\": " << r.cpi_detailed
           << ", \"cpi_fast\": " << r.cpi_fast
           << ", \"cpi_rel_err\": " << r.cpi_rel_err
           << ", \"errors_detailed\": " << r.errors_detailed
           << ", \"errors_fast\": " << r.errors_fast << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
      }
      js << "  ]\n}\n";
      if (json == "-") {
        std::cout << js.str();
      } else {
        std::ofstream f(json);
        if (!f) throw std::runtime_error("cannot write json file " + json);
        f << js.str();
        std::cout << "(validation JSON written to " << json << ")\n";
      }
    }
    return all_ok ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    // Config knob problems (Config throws invalid_argument): exit 2, the
    // same convention as the main CLI.
    std::cerr << "validate_fast_tier: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "validate_fast_tier: " << e.what() << "\n";
    return 1;
  }
}
