#!/usr/bin/env python3
"""Throughput regression gate for the shared cycle engine.

Consumes a google-benchmark JSON report (BENCH_sim.json, produced by
    build/bench/bench_sim_throughput \
        --benchmark_filter='BM_CycleEngine|BM_SyntheticStream' \
        --benchmark_out=BENCH_sim.json --benchmark_out_format=json)
and enforces two properties:

1. Fast-forward speedup (machine-independent): on the stall-heavy galgel
   grid point, the baseline system with engine.fast_forward=1 must simulate
   cycles at least --ff-min-speedup (default 1.15x) faster than the naive
   cycle loop. Both sides run in the same process on the same machine, so
   this ratio is stable across hosts.

2. Absolute throughput vs the committed baseline (10% tolerance): each
   BM_CycleEngine variant's cycles/sec, *normalised by the
   BM_SyntheticStream calibration benchmark from the same run*, must not
   drop more than --tolerance below bench/BENCH_sim_baseline.json. The
   normalisation divides out raw host speed; what remains is "simulated
   cycles per generated stream op", which tracks engine efficiency. Skipped
   (with a notice) if --baseline is not given.

To refresh the committed baseline after a deliberate perf change:
    python3 tools/check_bench_regression.py BENCH_sim.json \
        --write-baseline bench/BENCH_sim_baseline.json

Campaign-scheduler mode (--campaign): consumes the JSON that
    build/bench/bench_campaign_scaling json=BENCH_campaign.json
writes ("unsync.bench_campaign_scaling.v1") and enforces:
1. identical == true — the scheduler never leaked into results.
2. Work-stealing parallel efficiency at the largest non-oversubscribed
   worker count (workers <= hardware_concurrency) >= --min-efficiency
   (default 0.85). On hosts with a single core every multi-worker point is
   oversubscribed, so the gate falls back to the workers=1 point — which
   must stay near 1.0 (scheduling overhead, not parallelism, is then what
   is being bounded).
3. Work-stealing throughput at the largest measured worker count is not
   materially below the shared-queue scheduler's (>= 1 - --tolerance).

Two-tier mode (--tier): consumes the JSON that
    build/bench/bench_tier_screening json=BENCH_tier.json
writes ("unsync.bench_tier.v1") and enforces the validated-fast-model
contract (docs/TIERS.md):
1. identical == true — a tier=screen campaign at threshold 0 stayed
   byte-identical to the pure detailed campaign.
2. Whole-grid speedup of the fast tier >= --min-tier-speedup (default
   10x). Both tiers run in the same process on the same grid, so the
   ratio is machine-independent the same way the ff gate is.
3. Every cell's err_dev == 0 — the fast tier must consume the identical
   fault-arrival schedule, never an approximation of it.
4. Every cell's cpi_rel_err stays within the committed per-cell envelope
   (--tier-baseline bench/BENCH_tier_baseline.json). A fast model whose
   error drifts past its published bound is no longer validated and must
   not silently keep screening campaigns. Skipped (with a notice) if
   --tier-baseline is not given.

To refresh the committed envelope after a deliberate model change:
    python3 tools/check_bench_regression.py BENCH_tier.json --tier \
        --write-tier-baseline bench/BENCH_tier_baseline.json

Prefix-sharing mode (--prefix): consumes the JSON that
    build/bench/bench_injection_prefix json=BENCH_prefix.json
writes ("unsync.bench_prefix.v1") and enforces the prefix-engine contract
(docs/CAMPAIGNS.md, "Prefix-sharing"):
1. identical == true — the prefix-shared campaign stayed byte-identical
   to the naive full-run campaign.
2. Whole-grid speedup >= --min-prefix-speedup (default 3x). Both
   campaigns run in the same process on the same grid, so the ratio is
   machine-independent the same way the tier gate is.
3. The deterministic engine counters (goldens built, jobs restored /
   spliced / bypassed, cycles skipped) exactly match the committed
   baseline (--prefix-baseline bench/BENCH_prefix_baseline.json) — they
   are a pure function of the grid, so any drift means the engine's
   sharing decisions changed. Skipped (with a notice) if
   --prefix-baseline is not given.

To refresh after a deliberate engine change:
    python3 tools/check_bench_regression.py BENCH_prefix.json --prefix \
        --write-prefix-baseline bench/BENCH_prefix_baseline.json

System-matrix mode (--systems): consumes the JSON that
    build/bench/bench_system_matrix json=BENCH_systems.json
writes ("unsync.bench_systems.v1") and enforces the cross-architecture
acceptance surface (docs/SYSTEMS.md):
1. identical == true — the matrix is worker-count deterministic.
2. Coverage: at every ser>0 point hetero detects ALL injected strikes
   and at least matches lockstep's coverage.
3. Overhead: hetero's error-free cycles undercut reunion's (the
   fingerprint-synchronised DMR) on every benchmark.
4. Every gated per-cell integer (cycles, injected, detected, ...)
   exactly matches the committed baseline
   (--systems-baseline bench/BENCH_systems_baseline.json). Skipped
   (with a notice) if --systems-baseline is not given.

To refresh after a deliberate model change:
    python3 tools/check_bench_regression.py BENCH_systems.json --systems \
        --write-systems-baseline bench/BENCH_systems_baseline.json

Exit codes: 0 pass, 1 regression detected, 2 usage/input error.
"""

import argparse
import json
import sys

CALIBRATION = "BM_SyntheticStream"
BASELINE_SCHEMA = "unsync.bench_baseline.v1"


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read benchmark report {path}: {e}")
        sys.exit(2)
    out = {}
    for b in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        if "items_per_second" in b:
            out[b["name"]] = float(b["items_per_second"])
    if not out:
        print(f"error: no items_per_second entries in {path}")
        sys.exit(2)
    return out


def check_ff_speedup(ips, min_speedup):
    """The machine-independent gate: ff vs naive, same run, same host."""
    ok = True
    pairs = []
    for name in sorted(ips):
        if name.endswith("_naive"):
            ff_name = name[: -len("_naive")] + "_ff"
            if ff_name in ips:
                pairs.append((name, ff_name))
    if not pairs:
        print("error: no BM_CycleEngine naive/ff pairs in report")
        sys.exit(2)
    for naive, ff in pairs:
        ratio = ips[ff] / ips[naive]
        gated = "baseline" in naive  # the acceptance point (docs/ENGINE.md)
        verdict = "ok"
        if gated and ratio < min_speedup:
            verdict = f"FAIL (< {min_speedup:.2f}x required)"
            ok = False
        print(f"  ff speedup {naive.split('/')[-1].replace('_naive', ''):>10}"
              f": {ratio:5.2f}x  {'[gated] ' if gated else ''}{verdict}")
    return ok


def normalised(ips):
    cal = ips.get(CALIBRATION)
    if not cal:
        print(f"error: calibration benchmark {CALIBRATION} missing from "
              "report (do not pass --benchmark_filter that excludes it)")
        sys.exit(2)
    return {
        name: v / cal
        for name, v in ips.items()
        if name.startswith("BM_CycleEngine")
    }


def check_against_baseline(ips, baseline_path, tolerance):
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read baseline {baseline_path}: {e}")
        sys.exit(2)
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"error: {baseline_path} is not a {BASELINE_SCHEMA} file")
        sys.exit(2)
    current = normalised(ips)
    ok = True
    for name, base in sorted(baseline["benchmarks"].items()):
        cur = current.get(name)
        if cur is None:
            print(f"  vs baseline {name}: MISSING from current report")
            ok = False
            continue
        rel = cur / base
        verdict = "ok"
        if rel < 1.0 - tolerance:
            verdict = f"FAIL (>{tolerance:.0%} regression)"
            ok = False
        print(f"  vs baseline {name}: {rel:6.2%} of recorded throughput "
              f"{verdict}")
    return ok


def write_baseline(ips, path):
    doc = {
        "schema": BASELINE_SCHEMA,
        "calibration": CALIBRATION,
        "note": ("normalised throughput: BM_CycleEngine items_per_second / "
                 f"{CALIBRATION} items_per_second from the same run"),
        "benchmarks": {k: round(v, 6) for k, v in sorted(normalised(ips).items())},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote baseline {path} ({len(doc['benchmarks'])} entries)")


CAMPAIGN_SCHEMA = "unsync.bench_campaign_scaling.v1"


def check_campaign(path, min_efficiency, tolerance):
    """Gate the work-stealing scheduler's scaling report."""
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read campaign report {path}: {e}")
        sys.exit(2)
    if report.get("schema") != CAMPAIGN_SCHEMA:
        print(f"error: {path} is not a {CAMPAIGN_SCHEMA} file")
        sys.exit(2)

    ok = True
    if report.get("identical") is not True:
        print("  campaign: FAIL — results were NOT identical across "
              "schedules (determinism contract broken)")
        ok = False
    else:
        print("  campaign: results identical across every mode and worker "
              "count")

    cores = int(report.get("hardware_concurrency", 1))
    stealing = [p for p in report.get("points", [])
                if p.get("mode") == "stealing"]
    shared = [p for p in report.get("points", [])
              if p.get("mode") == "shared"]
    if not stealing:
        print("error: no work-stealing points in report")
        sys.exit(2)

    # The gated point: the largest worker count the host can actually run
    # in parallel (falls back to workers=1 on a single-core host, where the
    # gate bounds pure scheduling overhead instead).
    eligible = [p for p in stealing if p["workers"] <= cores]
    gated = max(eligible or stealing[:1], key=lambda p: p["workers"])
    eff = float(gated["efficiency"])
    verdict = "ok"
    if eff < min_efficiency:
        verdict = f"FAIL (< {min_efficiency:.2f} required)"
        ok = False
    print(f"  campaign: stealing efficiency at workers={gated['workers']} "
          f"(cores={cores}): {eff:.2f}  [gated] {verdict}")

    # Work stealing must not lose to the legacy shared queue.
    top_steal = max(stealing, key=lambda p: p["workers"])
    top_shared = [p for p in shared if p["workers"] == top_steal["workers"]]
    if top_shared:
        rel = top_steal["jobs_per_sec"] / top_shared[0]["jobs_per_sec"]
        verdict = "ok"
        if rel < 1.0 - tolerance:
            verdict = f"FAIL (>{tolerance:.0%} slower than shared queue)"
            ok = False
        print(f"  campaign: stealing vs shared throughput at workers="
              f"{top_steal['workers']}: {rel:6.2%} {verdict}")
    return ok


TIER_SCHEMA = "unsync.bench_tier.v1"
TIER_BASELINE_SCHEMA = "unsync.tier_baseline.v1"


def load_tier_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read tier report {path}: {e}")
        sys.exit(2)
    if report.get("schema") != TIER_SCHEMA:
        print(f"error: {path} is not a {TIER_SCHEMA} file")
        sys.exit(2)
    return report


def tier_cell_key(cell):
    return f"{cell['bench']}/{cell['system']}"


def check_tier(report, min_speedup, baseline_path):
    """Gate the two-tier screening report against the committed envelope."""
    ok = True

    if report.get("identical") is not True:
        print("  tier: FAIL — screened campaign was NOT byte-identical to "
              "pure detailed at threshold 0 (screening contract broken)")
        ok = False
    else:
        print("  tier: screen threshold=0 byte-identical to pure detailed")

    speedup = float(report.get("speedup", 0.0))
    verdict = "ok"
    if speedup < min_speedup:
        verdict = f"FAIL (< {min_speedup:.1f}x required)"
        ok = False
    print(f"  tier: fast-tier grid speedup: {speedup:5.1f}x  [gated] "
          f"{verdict}")

    bad_sched = [tier_cell_key(c) for c in report.get("cells", [])
                 if int(c.get("err_dev", 0)) != 0]
    if bad_sched:
        print(f"  tier: FAIL — fault-arrival schedule diverged in "
              f"{len(bad_sched)} cell(s): {', '.join(bad_sched[:5])}")
        ok = False
    else:
        print(f"  tier: fault-arrival schedule identical in all "
              f"{len(report.get('cells', []))} cells")

    if not baseline_path:
        print("  (no --tier-baseline given; skipping CPI-envelope gate)")
        return ok

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read tier baseline {baseline_path}: {e}")
        sys.exit(2)
    if baseline.get("schema") != TIER_BASELINE_SCHEMA:
        print(f"error: {baseline_path} is not a {TIER_BASELINE_SCHEMA} file")
        sys.exit(2)

    current = {tier_cell_key(c): c for c in report.get("cells", [])}
    worst = (None, 0.0)
    for key, bound in sorted(baseline["bounds"].items()):
        cell = current.get(key)
        if cell is None:
            print(f"  tier envelope {key}: MISSING from current report")
            ok = False
            continue
        err = float(cell["cpi_rel_err"])
        if worst[0] is None or err > worst[1]:
            worst = (key, err)
        if err > float(bound):
            print(f"  tier envelope {key}: cpi_rel_err {err:.3f} "
                  f"EXCEEDS bound {float(bound):.3f} FAIL")
            ok = False
    uncovered = sorted(set(current) - set(baseline["bounds"]))
    if uncovered:
        print(f"  tier envelope: {len(uncovered)} cell(s) have no committed "
              f"bound (refresh with --write-tier-baseline): "
              f"{', '.join(uncovered[:5])}")
        ok = False
    if worst[0] is not None:
        print(f"  tier envelope: all bounds checked; worst cell {worst[0]} "
              f"at cpi_rel_err {worst[1]:.3f}")
    return ok


def write_tier_baseline(report, path, headroom, margin):
    """Record per-cell bounds: measured error x headroom + margin.

    The headroom absorbs workload-profile jitter between runs; the
    additive margin keeps near-zero cells from pinning a bound so tight
    that normal noise trips it.
    """
    bounds = {
        tier_cell_key(c):
            round(float(c["cpi_rel_err"]) * headroom + margin, 4)
        for c in report.get("cells", [])
    }
    doc = {
        "schema": TIER_BASELINE_SCHEMA,
        "note": ("per-cell upper bound on the fast tier's CPI relative "
                 f"error: measured x {headroom} + {margin}; gate with "
                 "check_bench_regression.py --tier --tier-baseline"),
        "source_insts": report.get("insts"),
        "source_seed": report.get("seed"),
        "source_ser": report.get("ser"),
        "bounds": bounds,
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote tier baseline {path} ({len(bounds)} cell bounds)")


PREFIX_SCHEMA = "unsync.bench_prefix.v1"
PREFIX_BASELINE_SCHEMA = "unsync.prefix_baseline.v1"
# The counters that are a pure function of the grid (worker-count and
# host independent); timing counters (restore_ns) and cache-shape ones
# that scheduling may perturb (hits/misses under eviction) are not gated.
PREFIX_GATED_COUNTERS = ("goldens_built", "jobs_restored",
                         "jobs_early_terminated", "jobs_bypassed",
                         "cycles_skipped")


def load_prefix_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read prefix report {path}: {e}")
        sys.exit(2)
    if report.get("schema") != PREFIX_SCHEMA:
        print(f"error: {path} is not a {PREFIX_SCHEMA} file")
        sys.exit(2)
    return report


def check_prefix(report, min_speedup, baseline_path):
    """Gate the prefix-sharing campaign report."""
    ok = True

    if report.get("identical") is not True:
        print("  prefix: FAIL — prefix-shared campaign was NOT "
              "byte-identical to the naive run (execution-strategy "
              "contract broken)")
        ok = False
    else:
        print("  prefix: prefix-shared campaign byte-identical to naive")

    speedup = float(report.get("speedup", 0.0))
    verdict = "ok"
    if speedup < min_speedup:
        verdict = f"FAIL (< {min_speedup:.1f}x required)"
        ok = False
    print(f"  prefix: whole-grid speedup: {speedup:5.1f}x  [gated] "
          f"{verdict}")

    if not baseline_path:
        print("  (no --prefix-baseline given; skipping counter gate)")
        return ok

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read prefix baseline {baseline_path}: {e}")
        sys.exit(2)
    if baseline.get("schema") != PREFIX_BASELINE_SCHEMA:
        print(f"error: {baseline_path} is not a "
              f"{PREFIX_BASELINE_SCHEMA} file")
        sys.exit(2)
    for field in ("insts", "seed", "trials", "prefix_interval"):
        if baseline.get(f"source_{field}") != report.get(field):
            print(f"  prefix: FAIL — report {field}={report.get(field)} "
                  f"does not match the baseline's grid "
                  f"({field}={baseline.get(f'source_{field}')})")
            return False

    counters = report.get("counters", {})
    for name, want in sorted(baseline["counters"].items()):
        got = counters.get(name)
        if got is None:
            print(f"  prefix counter {name}: MISSING from current report")
            ok = False
        elif int(got) != int(want):
            print(f"  prefix counter {name}: {got} != committed {want} "
                  "FAIL (exact integer equality required)")
            ok = False
    if ok:
        print(f"  prefix: all {len(baseline['counters'])} gated counters "
              "exactly match")
    return ok


def write_prefix_baseline(report, path):
    """Pin the grid-deterministic engine counters.

    The simulation and the engine's sharing decisions are deterministic,
    so for a fixed grid the gated counters are machine- and worker-count
    independent — the gate is exact integer equality.
    """
    doc = {
        "schema": PREFIX_BASELINE_SCHEMA,
        "note": ("grid-deterministic prefix-engine counters from "
                 "bench_injection_prefix; gate with "
                 "check_bench_regression.py --prefix --prefix-baseline"),
        "source_insts": report.get("insts"),
        "source_seed": report.get("seed"),
        "source_trials": report.get("trials"),
        "source_prefix_interval": report.get("prefix_interval"),
        "counters": {name: int(report["counters"][name])
                     for name in PREFIX_GATED_COUNTERS},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote prefix baseline {path} "
          f"({len(doc['counters'])} counters)")


SYSTEMS_SCHEMA = "unsync.bench_systems.v1"
SYSTEMS_BASELINE_SCHEMA = "unsync.systems_baseline.v1"
# Per-cell integers that are a pure function of the grid (the simulation
# is deterministic): exact-equality gated against the committed baseline.
SYSTEMS_GATED_FIELDS = ("cycles", "injected", "detected", "rollbacks",
                        "recoveries", "cb_full_stalls", "fingerprint_syncs")


def load_systems_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read systems report {path}: {e}")
        sys.exit(2)
    if report.get("schema") != SYSTEMS_SCHEMA:
        print(f"error: {path} is not a {SYSTEMS_SCHEMA} file")
        sys.exit(2)
    if not report.get("cells"):
        print(f"error: no cells in {path}")
        sys.exit(2)
    return report


def systems_cell_key(cell):
    return f"{cell['bench']}/{cell['system']}/ser={cell['ser']:g}"


def check_systems(report, baseline_path):
    """Gate the six-architecture comparison matrix.

    Properties: worker-count determinism; full detection coverage on the
    redundant systems at ser>0 — hetero must detect every injected strike
    and at least match lockstep's coverage; the heterogeneous checker's
    error-free overhead must undercut the fingerprint-synchronised DMR
    (reunion) on every benchmark; and every gated per-cell integer must
    exactly equal the committed baseline.
    """
    ok = True
    cells = report["cells"]

    if report.get("identical") is not True:
        print("  systems: FAIL — matrix differed across worker counts "
              "(determinism contract broken)")
        ok = False
    else:
        print("  systems: matrix identical across worker counts")

    by_key = {}
    benches = set()
    for c in cells:
        by_key[(c["bench"], c["system"], float(c["ser"]))] = c
        benches.add(c["bench"])

    sers = sorted({float(c["ser"]) for c in cells})
    error_sers = [s for s in sers if s > 0.0]
    if not error_sers:
        print("  systems: FAIL — no ser>0 rows to measure coverage on")
        return False

    for bench in sorted(benches):
        for ser in error_sers:
            het = by_key.get((bench, "hetero", ser))
            lock = by_key.get((bench, "lockstep", ser))
            if het is None or lock is None:
                print(f"  systems: FAIL — {bench}/ser={ser:g} missing a "
                      "hetero or lockstep cell")
                ok = False
                continue
            if het["injected"] == 0:
                print(f"  systems: FAIL — {bench}/ser={ser:g} injected no "
                      "strikes into hetero (grid too small to gate coverage)")
                ok = False
                continue
            het_cov = het["detected"] / het["injected"]
            lock_cov = (lock["detected"] / lock["injected"]
                        if lock["injected"] else 1.0)
            verdict = "ok"
            if het["detected"] != het["injected"]:
                verdict = "FAIL (hetero missed a strike)"
                ok = False
            elif het_cov < lock_cov:
                verdict = "FAIL (below lockstep coverage)"
                ok = False
            print(f"  systems coverage {bench}/ser={ser:g}: hetero "
                  f"{het['detected']}/{het['injected']} vs lockstep "
                  f"{lock['detected']}/{lock['injected']} {verdict}")

        het0 = by_key.get((bench, "hetero", 0.0))
        reun0 = by_key.get((bench, "reunion", 0.0))
        if het0 is None or reun0 is None:
            print(f"  systems: FAIL — {bench} missing an error-free hetero "
                  "or reunion cell")
            ok = False
            continue
        rel = het0["cycles"] / reun0["cycles"]
        verdict = "ok"
        if het0["cycles"] >= reun0["cycles"]:
            verdict = "FAIL (checker core costs more than fingerprint sync)"
            ok = False
        print(f"  systems overhead {bench}: hetero error-free cycles at "
              f"{rel:6.2%} of reunion's {verdict}")

    if not baseline_path:
        print("  (no --systems-baseline given; skipping exact cell gate)")
        return ok

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read systems baseline {baseline_path}: {e}")
        sys.exit(2)
    if baseline.get("schema") != SYSTEMS_BASELINE_SCHEMA:
        print(f"error: {baseline_path} is not a "
              f"{SYSTEMS_BASELINE_SCHEMA} file")
        sys.exit(2)
    if (baseline.get("source_insts") != report.get("insts") or
            baseline.get("source_seed") != report.get("seed")):
        print(f"  systems: FAIL — report (insts={report.get('insts')}, "
              f"seed={report.get('seed')}) does not match the baseline's "
              f"grid (insts={baseline.get('source_insts')}, "
              f"seed={baseline.get('source_seed')})")
        return False

    current = {systems_cell_key(c): c for c in cells}
    mismatches = 0
    for key, want in sorted(baseline["cells"].items()):
        cell = current.get(key)
        if cell is None:
            print(f"  systems baseline {key}: MISSING from current report")
            ok = False
            continue
        for field, value in sorted(want.items()):
            if int(cell.get(field, -1)) != int(value):
                print(f"  systems baseline {key}.{field}: "
                      f"{cell.get(field)} != committed {value} FAIL "
                      "(exact integer equality required)")
                ok = False
                mismatches += 1
    uncovered = sorted(set(current) - set(baseline["cells"]))
    if uncovered:
        print(f"  systems baseline: {len(uncovered)} cell(s) have no "
              f"committed values (refresh with --write-systems-baseline): "
              f"{', '.join(uncovered[:5])}")
        ok = False
    if ok:
        print(f"  systems baseline: all {len(baseline['cells'])} cells "
              "exactly match")
    return ok


def write_systems_baseline(report, path):
    """Pin the exact per-cell integers of the six-architecture matrix.

    The simulation is deterministic, so for a fixed (insts, seed) grid
    every gated field is machine-independent and the gate is exact
    equality — any drift means an architecture model changed.
    """
    doc = {
        "schema": SYSTEMS_BASELINE_SCHEMA,
        "note": ("exact per-cell integers of the six-system comparison "
                 "matrix from bench_system_matrix; gate with "
                 "check_bench_regression.py --systems --systems-baseline"),
        "source_insts": report.get("insts"),
        "source_seed": report.get("seed"),
        "cells": {
            systems_cell_key(c): {f: int(c[f]) for f in SYSTEMS_GATED_FIELDS}
            for c in report["cells"]
        },
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote systems baseline {path} ({len(doc['cells'])} cells)")


AVF_SCHEMA = "unsync.bench_avf.v1"
AVF_BASELINE_SCHEMA = "unsync.avf_baseline.v1"


def load_avf_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read avf report {path}: {e}")
        sys.exit(2)
    if report.get("schema") != AVF_SCHEMA:
        print(f"error: {path} is not a {AVF_SCHEMA} file")
        sys.exit(2)
    if not report.get("plans"):
        print(f"error: no plans in {path}")
        sys.exit(2)
    return report


def check_avf(report, baseline_path):
    """Gate the uncore protection-frontier report.

    The plans are ordered by increasing protection (none -> parity ->
    secded): residual AVF and SDC must never increase along the frontier,
    area/power must never decrease, any plan with full single-bit coverage
    must have zero SDC, and the per-structure bit-cycle integers must be
    identical across plans (protection joins at report time only) and
    exactly equal to the committed baseline.
    """
    ok = True
    plans = report["plans"]

    if report.get("identical") is not True:
        print("  avf: FAIL — bit-cycle counters differed across worker "
              "counts or plans (observation-only contract broken)")
        ok = False
    else:
        print("  avf: counters identical across worker counts and plans")

    for prev, cur in zip(plans, plans[1:]):
        pair = f"{prev['plan']} -> {cur['plan']}"
        if cur["total_residual_avf"] > prev["total_residual_avf"] + 1e-12:
            print(f"  avf: FAIL — residual AVF rose along {pair}")
            ok = False
        if cur["sdc"] > prev["sdc"]:
            print(f"  avf: FAIL — SDC count rose along {pair}")
            ok = False
        if (cur["area_delta_um2"] < prev["area_delta_um2"] - 1e-9 or
                cur["power_delta_w"] < prev["power_delta_w"] - 1e-12):
            print(f"  avf: FAIL — protection cost fell along {pair}")
            ok = False
    print(f"  avf: frontier monotone over {len(plans)} plans "
          f"({' -> '.join(p['plan'] for p in plans)})")

    for p in plans:
        if p["plan"] != "none" and p["sdc"] != 0:
            print(f"  avf: FAIL — plan {p['plan']} has {p['sdc']} silent "
                  "corruptions under full single-bit coverage")
            ok = False

    first = {s["structure"]: s["bit_cycles"]
             for s in plans[0]["structures"]}
    if len(first) < 6:
        print(f"  avf: FAIL — only {len(first)} uncore structures measured "
              "(expected >= 6)")
        ok = False
    for p in plans[1:]:
        for s in p["structures"]:
            if first.get(s["structure"]) != s["bit_cycles"]:
                print(f"  avf: FAIL — {s['structure']} bit_cycles differ "
                      f"between plans {plans[0]['plan']} and {p['plan']}")
                ok = False
    print(f"  avf: {len(first)} structures, bit-cycles equal across plans")

    if not baseline_path:
        print("  (no --avf-baseline given; skipping exact bit-cycle gate)")
        return ok

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read avf baseline {baseline_path}: {e}")
        sys.exit(2)
    if baseline.get("schema") != AVF_BASELINE_SCHEMA:
        print(f"error: {baseline_path} is not a {AVF_BASELINE_SCHEMA} file")
        sys.exit(2)
    if (baseline.get("source_insts") != report.get("insts") or
            baseline.get("source_seed") != report.get("seed")):
        print(f"  avf: FAIL — report (insts={report.get('insts')}, "
              f"seed={report.get('seed')}) does not match the baseline's "
              f"grid (insts={baseline.get('source_insts')}, "
              f"seed={baseline.get('source_seed')})")
        return False
    for name, bits in sorted(baseline["bit_cycles"].items()):
        cur = first.get(name)
        if cur is None:
            print(f"  avf baseline {name}: MISSING from current report")
            ok = False
        elif cur != bits:
            print(f"  avf baseline {name}: bit_cycles {cur} != committed "
                  f"{bits} FAIL (exact integer equality required)")
            ok = False
    extra = sorted(set(first) - set(baseline["bit_cycles"]))
    if extra:
        print(f"  avf baseline: {len(extra)} structure(s) have no committed "
              f"value (refresh with --write-avf-baseline): "
              f"{', '.join(extra)}")
        ok = False
    if ok:
        print(f"  avf baseline: all {len(baseline['bit_cycles'])} "
              "structures exactly match")
    return ok


def write_avf_baseline(report, path):
    """Pin the exact per-structure ACE bit-cycle integers.

    The simulation is deterministic, so for a fixed (insts, seed) grid the
    integers are machine-independent and the gate is exact equality — any
    drift means the measurement (or a hook site) changed.
    """
    doc = {
        "schema": AVF_BASELINE_SCHEMA,
        "note": ("exact ACE bit-cycle integers per uncore structure from "
                 "bench_avf_frontier; gate with check_bench_regression.py "
                 "--avf --avf-baseline"),
        "source_insts": report.get("insts"),
        "source_seed": report.get("seed"),
        "bit_cycles": {s["structure"]: s["bit_cycles"]
                       for s in report["plans"][0]["structures"]},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote avf baseline {path} "
          f"({len(doc['bit_cycles'])} structures)")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("report", help="google-benchmark JSON (BENCH_sim.json) "
                    "or, with --campaign, a BENCH_campaign JSON")
    ap.add_argument("--baseline", help="committed BENCH_sim_baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop vs baseline (default 0.10)")
    ap.add_argument("--ff-min-speedup", type=float, default=1.15,
                    help="required ff/naive speedup on galgel (default 1.15)")
    ap.add_argument("--campaign", action="store_true",
                    help="gate a bench_campaign_scaling JSON instead of a "
                    "google-benchmark report")
    ap.add_argument("--min-efficiency", type=float, default=0.85,
                    help="required work-stealing parallel efficiency at the "
                    "gated point (default 0.85)")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write a fresh baseline from the report and exit")
    ap.add_argument("--tier", action="store_true",
                    help="gate a bench_tier_screening JSON instead of a "
                    "google-benchmark report")
    ap.add_argument("--min-tier-speedup", type=float, default=10.0,
                    help="required fast-tier whole-grid speedup "
                    "(default 10.0)")
    ap.add_argument("--tier-baseline", metavar="PATH",
                    help="committed BENCH_tier_baseline.json envelope")
    ap.add_argument("--tier-headroom", type=float, default=1.5,
                    help="bound = measured error x this when writing the "
                    "tier baseline (default 1.5)")
    ap.add_argument("--tier-margin", type=float, default=0.02,
                    help="additive slack on every written tier bound "
                    "(default 0.02)")
    ap.add_argument("--write-tier-baseline", metavar="PATH",
                    help="with --tier: write a fresh error envelope from "
                    "the report and exit")
    ap.add_argument("--prefix", action="store_true",
                    help="gate a bench_injection_prefix JSON instead of a "
                    "google-benchmark report")
    ap.add_argument("--min-prefix-speedup", type=float, default=3.0,
                    help="required prefix-sharing whole-grid speedup "
                    "(default 3.0)")
    ap.add_argument("--prefix-baseline", metavar="PATH",
                    help="committed BENCH_prefix_baseline.json (exact "
                    "engine counters)")
    ap.add_argument("--write-prefix-baseline", metavar="PATH",
                    help="with --prefix: pin the current engine counters "
                    "and exit")
    ap.add_argument("--systems", action="store_true",
                    help="gate a bench_system_matrix JSON instead of a "
                    "google-benchmark report")
    ap.add_argument("--systems-baseline", metavar="PATH",
                    help="committed BENCH_systems_baseline.json (exact "
                    "per-cell integers)")
    ap.add_argument("--write-systems-baseline", metavar="PATH",
                    help="with --systems: pin the current per-cell "
                    "integers and exit")
    ap.add_argument("--avf", action="store_true",
                    help="gate a bench_avf_frontier JSON instead of a "
                    "google-benchmark report")
    ap.add_argument("--avf-baseline", metavar="PATH",
                    help="committed BENCH_avf_baseline.json (exact "
                    "per-structure bit-cycle integers)")
    ap.add_argument("--write-avf-baseline", metavar="PATH",
                    help="with --avf: pin the current per-structure "
                    "bit-cycle integers and exit")
    args = ap.parse_args()

    if args.prefix:
        report = load_prefix_report(args.report)
        if args.write_prefix_baseline:
            write_prefix_baseline(report, args.write_prefix_baseline)
            return 0
        ok = check_prefix(report, args.min_prefix_speedup,
                          args.prefix_baseline)
        print("bench gate:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    if args.systems:
        report = load_systems_report(args.report)
        if args.write_systems_baseline:
            write_systems_baseline(report, args.write_systems_baseline)
            return 0
        ok = check_systems(report, args.systems_baseline)
        print("bench gate:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    if args.avf:
        report = load_avf_report(args.report)
        if args.write_avf_baseline:
            write_avf_baseline(report, args.write_avf_baseline)
            return 0
        ok = check_avf(report, args.avf_baseline)
        print("bench gate:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    if args.tier:
        report = load_tier_report(args.report)
        if args.write_tier_baseline:
            write_tier_baseline(report, args.write_tier_baseline,
                                args.tier_headroom, args.tier_margin)
            return 0
        ok = check_tier(report, args.min_tier_speedup, args.tier_baseline)
        print("bench gate:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    if args.campaign:
        ok = check_campaign(args.report, args.min_efficiency, args.tolerance)
        print("bench gate:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    ips = load_report(args.report)
    if args.write_baseline:
        write_baseline(ips, args.write_baseline)
        return 0

    ok = check_ff_speedup(ips, args.ff_min_speedup)
    if args.baseline:
        ok = check_against_baseline(ips, args.baseline, args.tolerance) and ok
    else:
        print("  (no --baseline given; skipping absolute-throughput gate)")
    print("bench gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
