// gen_engine_goldens — regenerates the engine parity goldens
// (tests/golden/engine/*.json).
//
// The goldens pin RunResult::to_json for every system on a fixed grid of
// (profile x seed) points with error injection enabled. They were captured
// BEFORE the SimKernel refactor, so test_engine_parity proves the shared
// cycle engine — with and without quiescence fast-forwarding — reproduces
// the original bespoke run() loops bit for bit. Regenerate only for a
// deliberate, documented behaviour change (see docs/ENGINE.md).
//
// Usage: gen_engine_goldens <output-dir>
#include <fstream>
#include <iostream>

#include "core/factory.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: gen_engine_goldens <output-dir>\n";
    return 2;
  }
  const std::string dir = argv[1];

  using namespace unsync;
  const core::SystemKind kinds[] = {
      core::SystemKind::kBaseline, core::SystemKind::kUnSync,
      core::SystemKind::kReunion, core::SystemKind::kLockstep,
      core::SystemKind::kCheckpoint, core::SystemKind::kHetero};
  const char* profiles[] = {"galgel", "gzip"};
  const std::uint64_t seeds[] = {7, 21, 1234};

  int written = 0;
  for (const auto kind : kinds) {
    for (const char* prof : profiles) {
      for (const auto seed : seeds) {
        workload::SyntheticStream stream(workload::profile(prof), seed, 6000);
        core::SystemConfig cfg;
        cfg.num_threads = 2;
        cfg.ser_per_inst = 5e-4;
        cfg.seed = seed;
        const auto sys = core::make_system(kind, cfg, stream);
        const core::RunResult r = sys->run();
        const std::string path = dir + "/" + core::name_of(kind) + "_" +
                                 prof + "_s" + std::to_string(seed) + ".json";
        std::ofstream out(path);
        if (!out) {
          std::cerr << "cannot write " << path << "\n";
          return 1;
        }
        out << r.to_json() << "\n";
        ++written;
      }
    }
  }
  std::cout << "wrote " << written << " goldens to " << dir << "\n";
  return 0;
}
