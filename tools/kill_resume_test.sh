#!/bin/sh
# Crash-safety integration test, two phases:
#
# Phase 1 — single process: SIGKILL a journaled campaign mid-flight, resume
# it with a different worker count, and require the resumed
# unsync.campaign.v2 JSON to be byte-identical to an uninterrupted run.
#
# Phase 2 — multi-process: run the same grid as a distributed campaign
# (coordinator + 2 shard workers), SIGKILL worker 1 mid-flight, restart it
# (steal disabled, so resuming the dead worker is load-bearing), and require
# the coordinator's merged JSON to be byte-identical to the serial
# reference too.
#
# Phases 3/4 — the same two shapes with prefix_share=1: prefix-sharing is an
# execution strategy, so a killed-and-resumed prefix campaign (single and
# distributed) must still emit bytes identical to the naive prefix_share=0
# reference. CSV output here: format=json implies metrics collection, which
# routes jobs around the engine — CSV keeps the engine load-bearing.
#
# Usage: kill_resume_test.sh <path-to-unsync_sim> <work-dir>
#
# The kills land at arbitrary points (maybe before the journal header,
# maybe mid-entry, maybe after the grid finished) — the resume contract
# covers every case, so the test is deterministic even though the kill
# points are not.
set -eu

SIM=$1
WORK=$2
mkdir -p "$WORK"
JOURNAL="$WORK/kill_resume_journal.jsonl"
REF="$WORK/kill_resume_ref.json"
GOT="$WORK/kill_resume_got.json"
rm -f "$JOURNAL" "$REF" "$GOT"

GRID="campaign benches=gzip,mcf,susan,bzip2 systems=baseline,unsync,reunion \
      insts=20000 ser=1e-5 format=json"

# Ground truth: the same grid, uninterrupted, no journal.
# shellcheck disable=SC2086  # word-splitting of $GRID is intended
"$SIM" $GRID threads=2 > "$REF"

# Start the journaled campaign, let it make partial progress, then SIGKILL
# it — no atexit handlers, no destructor flushes, the hard case.
# shellcheck disable=SC2086
"$SIM" $GRID threads=2 checkpoint="$JOURNAL" > /dev/null 2>&1 &
PID=$!
sleep 1
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# Resume with a different worker count; the output must be byte-identical
# to the uninterrupted reference.
# shellcheck disable=SC2086
"$SIM" $GRID threads=4 checkpoint="$JOURNAL" resume=1 > "$GOT"

cmp "$REF" "$GOT"
echo "kill+resume: byte-identical campaign output"

# ---------------------------------------------------------------------------
# Phase 2: distributed campaign — coordinator + 2 workers, kill -9 one.
# ---------------------------------------------------------------------------
DIST="$WORK/kill_resume_dist"
DGOT="$WORK/kill_resume_dist.json"
rm -rf "$DIST" "$DGOT"

# The coordinator emits format=json, so it merges with metrics collected;
# workers must journal metrics too (collect_metrics=1) or the shard headers
# would pin a different campaign.
# shellcheck disable=SC2086
WGRID="benches=gzip,mcf,susan,bzip2 systems=baseline,unsync,reunion \
       insts=20000 ser=1e-5 dir=$DIST workers=2 collect_metrics=1 steal=0"

# Worker 0 runs to completion; worker 1 is killed mid-shard. steal=0 keeps
# worker 0 from covering for it — the killed worker's own resume must do
# the recovery, which is exactly what phase 2 verifies.
# shellcheck disable=SC2086
"$SIM" campaign-worker $WGRID worker=0 > /dev/null &
W0=$!
# shellcheck disable=SC2086
"$SIM" campaign-worker $WGRID worker=1 > /dev/null 2>&1 &
W1=$!
sleep 1
kill -9 "$W1" 2>/dev/null || true
wait "$W1" 2>/dev/null || true
wait "$W0"

# Restart the killed worker: its journal's valid lines are restored, the
# torn tail re-runs.
# shellcheck disable=SC2086
"$SIM" campaign-worker $WGRID worker=1 > /dev/null

# The shard journals must now cover the grid; the merge must reproduce the
# serial reference bytes.
# shellcheck disable=SC2086
"$SIM" campaign-coordinator benches=gzip,mcf,susan,bzip2 \
    systems=baseline,unsync,reunion insts=20000 ser=1e-5 \
    dir="$DIST" workers=2 timeout=60 format=json > "$DGOT"

cmp "$REF" "$DGOT"
echo "kill+resume (distributed): byte-identical merged campaign output"

# The status subcommand reads both shard journals without running anything.
"$SIM" campaign status journal="$DIST/shard_1.jsonl" | grep -q "pending:"
echo "campaign status: shard journal inspected"

# ---------------------------------------------------------------------------
# Phase 3: prefix-sharing campaign — kill -9 mid-flight, resume, compare
# against the naive (prefix_share=0) reference bytes.
# ---------------------------------------------------------------------------
PJOURNAL="$WORK/kill_resume_prefix.jsonl"
PREF="$WORK/kill_resume_prefix_ref.csv"
PGOT="$WORK/kill_resume_prefix_got.csv"
rm -f "$PJOURNAL" "$PREF" "$PGOT"

PGRID="campaign benches=gzip,mcf,susan,bzip2 systems=baseline,unsync,reunion \
       insts=20000 ser=1e-5 csv=1"
PREFIX="prefix_share=1 prefix_interval=4000"

# shellcheck disable=SC2086
"$SIM" $PGRID threads=2 > "$PREF"

# shellcheck disable=SC2086
"$SIM" $PGRID $PREFIX threads=2 checkpoint="$PJOURNAL" > /dev/null 2>&1 &
PID=$!
sleep 1
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# shellcheck disable=SC2086
"$SIM" $PGRID $PREFIX threads=4 checkpoint="$PJOURNAL" resume=1 > "$PGOT"

cmp "$PREF" "$PGOT"
echo "kill+resume (prefix-sharing): byte-identical campaign output"

# ---------------------------------------------------------------------------
# Phase 4: distributed prefix-sharing campaign — kill -9 worker 1, restart,
# merge, compare against the same naive reference.
# ---------------------------------------------------------------------------
PDIST="$WORK/kill_resume_prefix_dist"
PDGOT="$WORK/kill_resume_prefix_dist.csv"
rm -rf "$PDIST" "$PDGOT"

PWGRID="benches=gzip,mcf,susan,bzip2 systems=baseline,unsync,reunion \
        insts=20000 ser=1e-5 dir=$PDIST workers=2 steal=0 $PREFIX"

# shellcheck disable=SC2086
"$SIM" campaign-worker $PWGRID worker=0 > /dev/null &
W0=$!
# shellcheck disable=SC2086
"$SIM" campaign-worker $PWGRID worker=1 > /dev/null 2>&1 &
W1=$!
sleep 1
kill -9 "$W1" 2>/dev/null || true
wait "$W1" 2>/dev/null || true
wait "$W0"

# shellcheck disable=SC2086
"$SIM" campaign-worker $PWGRID worker=1 > /dev/null

# shellcheck disable=SC2086
"$SIM" campaign-coordinator benches=gzip,mcf,susan,bzip2 \
    systems=baseline,unsync,reunion insts=20000 ser=1e-5 \
    dir="$PDIST" workers=2 timeout=60 csv=1 $PREFIX > "$PDGOT"

cmp "$PREF" "$PDGOT"
echo "kill+resume (distributed prefix-sharing): byte-identical merged output"

# The trailing stats line of a prefix shard journal parses cleanly.
"$SIM" campaign status journal="$PDIST/shard_0.jsonl" | grep -q "prefix cache:"
echo "campaign status: prefix stats line inspected"
