#!/bin/sh
# Crash-safety integration test: SIGKILL a journaled campaign mid-flight,
# resume it with a different worker count, and require the resumed
# unsync.campaign.v1 JSON to be byte-identical to an uninterrupted run.
#
# Usage: kill_resume_test.sh <path-to-unsync_sim> <work-dir>
#
# The kill lands at an arbitrary point (maybe before the journal header,
# maybe mid-entry, maybe after the grid finished) — the resume contract
# covers every case, so the test is deterministic even though the kill
# point is not.
set -eu

SIM=$1
WORK=$2
mkdir -p "$WORK"
JOURNAL="$WORK/kill_resume_journal.jsonl"
REF="$WORK/kill_resume_ref.json"
GOT="$WORK/kill_resume_got.json"
rm -f "$JOURNAL" "$REF" "$GOT"

GRID="campaign benches=gzip,mcf,susan,bzip2 systems=baseline,unsync,reunion \
      insts=20000 ser=1e-5 format=json"

# Ground truth: the same grid, uninterrupted, no journal.
# shellcheck disable=SC2086  # word-splitting of $GRID is intended
"$SIM" $GRID threads=2 > "$REF"

# Start the journaled campaign, let it make partial progress, then SIGKILL
# it — no atexit handlers, no destructor flushes, the hard case.
# shellcheck disable=SC2086
"$SIM" $GRID threads=2 checkpoint="$JOURNAL" > /dev/null 2>&1 &
PID=$!
sleep 1
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# Resume with a different worker count; the output must be byte-identical
# to the uninterrupted reference.
# shellcheck disable=SC2086
"$SIM" $GRID threads=4 checkpoint="$JOURNAL" resume=1 > "$GOT"

cmp "$REF" "$GOT"
echo "kill+resume: byte-identical campaign output"
