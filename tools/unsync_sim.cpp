// unsync_sim — the command-line front end of the simulator.
//
// Subcommands:
//   run          simulate a workload on a chosen architecture
//   sweep        one CSV row per value of a swept parameter
//   campaign     a (benchmark x system) grid across a host thread pool
//   campaign-worker       run one shard of a distributed campaign
//   campaign-coordinator  wait for the shards and merge their journals
//   campaign status       inspect a campaign journal (done/pending/corrupt)
//   characterize print a stream characterisation (benchmark-table style)
//   asm          assemble + functionally execute a URISC source file
//   record       record a URISC program into a binary UTRC trace file
//   hw           print the hardware model summary for each architecture
//   list         list built-in benchmark profiles and kernels
//   version      print schema versions and build configuration
//
// Checkpoint / restore (docs/CHECKPOINTS.md):
//   run checkpoint=<f> checkpoint_at=<cycle>  snapshot mid-run and exit
//   run resume=<f>                            continue a snapshot to the end
//   campaign checkpoint=<f> [checkpoint_every=N] [resume=1]
//                                             crash-safe resumable campaigns
//
// Workload selection (for run / sweep / campaign / characterize / record):
//   bench=<name>      one of the built-in statistical profiles
//   kernel=<name>     one of the built-in URISC kernels (e.g. matmul_8)
//   program=<file.s>  assemble and trace a URISC source file
//   trace=<file.utrc> replay a previously recorded binary trace
//
// Model tiers (docs/TIERS.md):
//   run/sweep/campaign tier=detailed|fast selects the cycle-accurate
//   system or the approximate interval model; campaign additionally
//   accepts tier=screen screen_threshold=<score|inf> — a fast sweep of
//   the grid, then a detailed re-run of every cell whose screening score
//   reaches the threshold.
//
// Options are key=value; all keys are snake_case. A leading "--" is
// accepted and stripped, and kebab-case GNU spellings map onto the
// snake_case key (--format=json == format=json, --screen-threshold=5 ==
// screen_threshold=5; a bare --progress == progress=1).
//
// Parallelism: sweep and campaign fan their independent simulations out
// across host threads (threads=N, default: hardware concurrency). Results
// are aggregated in submission order and every job seed derives from
// (seed, job_index), so output — including format=json — is byte-identical
// for any thread count.
//
// Exit codes: 0 = success; 1 = simulation/runtime error (assembly failure,
// unreadable trace, model error); 2 = configuration/usage error (unknown
// subcommand or system, malformed or unrecognized key=value).
//
// Examples:
//   unsync_sim run system=unsync bench=bzip2 insts=100000 ser=1e-9 report=1
//   unsync_sim run system=unsync bench=susan format=json metrics=m.json
//   unsync_sim campaign systems=baseline,unsync,reunion insts=50000 csv=1
//   unsync_sim campaign benches=susan,lame format=json --progress
//   unsync_sim sweep param=cb values=8,64,256 system=unsync bench=susan
//   unsync_sim characterize bench=susan insts=50000
//   unsync_sim hw
#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "engine/sim_model.hpp"
#include "fault/avf.hpp"
#include "hwmodel/components.hpp"
#include "hwmodel/core_model.hpp"
#include "isa/assembler.hpp"
#include "isa/functional_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/campaign.hpp"
#include "runtime/campaign_journal.hpp"
#include "runtime/distributed.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/kernels.hpp"
#include "workload/profile.hpp"
#include "workload/stream_stats.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace {

using namespace unsync;

/// A misuse of the command line (unknown subcommand/system/parameter).
/// Distinguished from simulation errors so scripts can tell "fix the
/// invocation" (exit 2) from "the run failed" (exit 1).
struct ConfigError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

constexpr int kExitOk = 0;
constexpr int kExitSimError = 1;
constexpr int kExitConfigError = 2;

void print_usage(std::ostream& os) {
  os <<
      "usage: unsync_sim "
      "<run|sweep|campaign|campaign-worker|campaign-coordinator|"
      "characterize|asm|record|hw|avf-report|list|version>"
      " [key=value...]\n"
      "  run: system=unsync|reunion|baseline|lockstep|checkpoint|hetero\n"
      "       bench=|kernel=|program=|trace=   [insts= seed= threads= ser=]\n"
      "       [tier=detailed|fast]  fast = approximate interval model\n"
      "         (docs/TIERS.md; no checkpoints / memory report)\n"
      "       unsync: cb=<entries> group=<N>   reunion: fi= latency=\n"
      "       checkpoint: interval= capture=\n"
      "       hetero: checker.log=<entries> checker.width=<N>\n"
      "               checker.rollback=<cycles>  (docs/SYSTEMS.md)\n"
      "       output: report=1 csv=1 format=json\n"
      "               metrics=<path>  write the metric tree (.csv or .json)\n"
      "               trace_out=<path> write a JSONL event trace\n"
      "               trace_flush_every=<N> trace flush cadence (default "
      "256)\n"
      "       checkpoint: checkpoint=<file> checkpoint_at=<cycle>  save+exit\n"
      "                   resume=<file>  continue a saved snapshot\n"
      "  sweep: param=<cb|fi|latency|group|log|ser> values=v1,v2,...\n"
      "         + run args\n"
      "         [threads=<host workers, default all cores>] [tier=]\n"
      "  campaign: [systems=baseline,unsync,reunion] [benches=n1,n2|all]\n"
      "            [insts= seed= ser= threads=<host workers>]\n"
      "            [tier=detailed|fast|screen screen_threshold=<score|inf>]\n"
      "              tier=screen: fast sweep, then detailed re-run of every\n"
      "              cell whose screening score reaches the threshold\n"
      "            [csv=1 format=json metrics=<path> progress=1]\n"
      "            [checkpoint=<journal> checkpoint_every=N resume=1]\n"
      "            [scheduler=stealing|shared chunk=<indices per claim>]\n"
      "            [prefix_share=1 prefix_interval=<cycles>\n"
      "              prefix_cache_mb=<MiB>]  share each cell's fault-free\n"
      "              prefix via cached golden checkpoints; byte-identical\n"
      "              results, detailed tier only (docs/CAMPAIGNS.md)\n"
      "  campaign-worker: dir=<campaign dir> worker=<i> workers=<N>\n"
      "            + the campaign grid args (systems/benches/insts/seed/\n"
      "              tier/screen_threshold/...) — all participants must\n"
      "              pass identical grid args (the manifest CRC checks)\n"
      "            [threads= steal=0 checkpoint_every=N collect_metrics=1]\n"
      "  campaign-coordinator: dir=<campaign dir> workers=<N> + grid args\n"
      "            [poll_ms= timeout=<seconds>] + campaign output args\n"
      "  campaign status: journal=<file>  print done/pending/corrupt counts\n"
      "            (exit 2 when the journal holds corrupt entries)\n"
      "  characterize: bench=|kernel=|program=|trace=  [insts= seed=]\n"
      "  asm: program=<file.s> [max_steps=]\n"
      "  record: bench=|kernel=|program=  out=<file.utrc> [insts= seed=]\n"
      "  hw: [fi= cb=]\n"
      "  avf-report: [systems=unsync] [benches=gzip] [insts= seed= threads=]\n"
      "            [protect= protect.<structure>=] [indent=2] [out=<path>]\n"
      "            run an avf=1 campaign and print the unsync.avf_report.v1\n"
      "            JSON (per-structure ACE exposure + protection coverage +\n"
      "            hwmodel area/power deltas); byte-identical for any\n"
      "            threads= value (docs/FAULTS.md)\n"
      "  version: print schema versions and build configuration\n"
      "  global: log=debug|info|warn|error   (diagnostic verbosity)\n"
      "          engine.fast_forward=1  quiescence fast-forwarding for\n"
      "            run/sweep/campaign — bit-identical results, fewer ticks\n"
      "          avf=1  ACE/AVF residency accounting for run/sweep/campaign\n"
      "            (observation-only: simulated results are bit-identical;\n"
      "            adds the fault.avf.* metric tree)\n"
      "          protect=<none|parity|secded>  uniform uncore protection\n"
      "            plan; protect.<bus_queue|mshr|write_buffer|cache_tag|\n"
      "            tlb|dram_queue>=<mech> overrides one structure\n"
      "key spelling: every option is key=value and every key is snake_case;\n"
      "  --key=value is accepted for any key, a bare --flag means flag=1,\n"
      "  and kebab-case GNU spellings map onto the snake_case key\n"
      "  (--screen-threshold=5 == screen_threshold=5). Unknown keys fail\n"
      "  (exit 2) with a did-you-mean suggestion.\n"
      "exit codes: 0 success, 1 simulation error, 2 configuration error\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_csv(const std::string& values) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : values) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Builds the workload stream selected by bench=/kernel=/program=/trace=.
std::unique_ptr<workload::InstStream> make_stream(const Config& cfg,
                                                  std::string* label) {
  const auto insts =
      static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  if (cfg.has("bench")) {
    const std::string name = cfg.get_string("bench", "");
    *label = name;
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(name), seed, insts);
  }
  if (cfg.has("kernel")) {
    const std::string name = cfg.get_string("kernel", "");
    *label = name;
    for (const auto& k : workload::standard_kernel_suite()) {
      if (k.name == name) {
        return std::make_unique<workload::TraceStream>(
            workload::record_trace(workload::assemble(k), 3'000'000));
      }
    }
    throw ConfigError("unknown kernel: " + name + " (see `unsync_sim list`)");
  }
  if (cfg.has("program")) {
    const std::string path = cfg.get_string("program", "");
    *label = path;
    const auto prog = isa::Assembler::assemble(read_file(path));
    return std::make_unique<workload::TraceStream>(
        workload::record_trace(prog, insts));
  }
  if (cfg.has("trace")) {
    const std::string path = cfg.get_string("trace", "");
    *label = path;
    return std::make_unique<workload::TraceStream>(
        workload::load_trace(path));
  }
  throw ConfigError(
      "select a workload with bench=, kernel=, program= or trace=");
}

/// Every simulation knob shared by run/sweep/campaign, parsed in ONE place
/// so the subcommands cannot drift apart: the SystemParams block (which
/// carries the architecture knobs AND the model-tier choice, docs/TIERS.md)
/// plus the run-environment trio seed / SER / fast-forward, plus the
/// campaign-only screening policy.
struct CommonKnobs {
  core::SystemParams params;
  double ser = 0.0;
  std::uint64_t seed = 42;
  bool fast_forward = false;
  /// tier=screen (two-phase screening; campaign family only).
  bool screen = false;
  double screen_threshold = 0.0;
  /// avf=1: ACE/AVF residency accounting (observation-only; docs/FAULTS.md).
  bool avf = false;
  /// protect= / protect.<structure>= — the uncore protection plan joined
  /// with the measured AVF at report time.
  fault::UncorePlan protect;
};

/// Parses protect=<mech> (uniform) and the per-structure
/// protect.<structure>=<mech> overrides. Consults every per-structure key
/// even when absent so each participates in did-you-mean suggestions.
fault::UncorePlan protect_plan_from(const Config& cfg) {
  fault::UncorePlan plan;
  const auto parse = [](const std::string& key, const std::string& value) {
    fault::Mechanism m;
    if (!fault::parse_protect_mechanism(value, &m)) {
      throw ConfigError("unknown mechanism for " + key + ": " + value +
                        " (none|parity|secded)");
    }
    return m;
  };
  if (cfg.has("protect")) {
    plan = fault::uniform_uncore_plan(
        parse("protect", cfg.get_string("protect", "none")));
  }
  bool custom = false;
  for (std::size_t i = 0; i < fault::kUncoreStructureCount; ++i) {
    const auto s = static_cast<fault::UncoreStructure>(i);
    const std::string key = std::string("protect.") + fault::name_of(s);
    const std::string value = cfg.get_string(key, "");
    if (value.empty()) continue;
    plan.set(s, parse(key, value));
    custom = true;
  }
  if (custom) plan.name = "custom";
  return plan;
}

CommonKnobs knobs_from(const Config& cfg, bool allow_screen = false) {
  CommonKnobs k;
  auto& p = k.params;
  p.unsync.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 128));
  p.unsync.group_size = static_cast<unsigned>(cfg.get_int("group", 2));
  p.reunion.fingerprint_interval =
      static_cast<unsigned>(cfg.get_int("fi", 10));
  p.reunion.compare_latency = static_cast<Cycle>(cfg.get_int("latency", 10));
  p.checkpoint.checkpoint_interval =
      static_cast<std::uint64_t>(cfg.get_int("interval", 1000));
  p.checkpoint.checkpoint_cost =
      static_cast<Cycle>(cfg.get_int("capture", 120));
  p.hetero.log_entries =
      static_cast<std::size_t>(cfg.get_int("checker.log", 64));
  p.hetero.checker_width =
      static_cast<std::uint32_t>(cfg.get_int("checker.width", 2));
  p.hetero.rollback_penalty =
      static_cast<Cycle>(cfg.get_int("checker.rollback", 60));
  if (p.hetero.log_entries == 0) {
    throw ConfigError("checker.log= must be >= 1");
  }
  if (p.hetero.checker_width == 0) {
    throw ConfigError("checker.width= must be >= 1");
  }
  k.ser = cfg.get_double("ser", 0.0);
  k.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  k.fast_forward = cfg.get_bool("engine.fast_forward", false);
  k.avf = cfg.get_bool("avf", false);
  k.protect = protect_plan_from(cfg);

  const std::string tier = cfg.get_string("tier", "detailed");
  if (tier == "screen") {
    if (!allow_screen) {
      throw ConfigError(
          "tier=screen is campaign-only (this command runs a single "
          "tier; see docs/TIERS.md)");
    }
    // Jobs stay tier=detailed in the grid: the screening policy (not the
    // per-job tier) decides which model runs each cell.
    k.screen = true;
    const std::string threshold = cfg.get_string("screen_threshold", "0");
    if (threshold == "inf" || threshold == "infinity") {
      k.screen_threshold = std::numeric_limits<double>::infinity();
    } else {
      try {
        k.screen_threshold = std::stod(threshold);
      } catch (const std::exception&) {
        throw ConfigError("screen_threshold= is not a number: " + threshold);
      }
    }
  } else {
    const auto t = engine::parse_tier(tier);
    if (!t) {
      throw ConfigError(std::string("unknown tier: ") + tier +
                        (allow_screen ? " (detailed|fast|screen)"
                                      : " (detailed|fast)"));
    }
    p.tier = *t;
    if (cfg.has("screen_threshold")) {
      throw ConfigError("screen_threshold= needs tier=screen");
    }
  }
  return k;
}

/// Resolves the sweep/campaign workload into a SimJob template: a profile
/// name for synthetic benchmarks, or a shared recorded trace otherwise.
runtime::SimJob job_template(const Config& cfg, const CommonKnobs& knobs,
                             std::string* label) {
  runtime::SimJob job;
  job.insts = static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  job.params = knobs.params;
  job.ser_per_inst = knobs.ser;
  job.fast_forward = knobs.fast_forward;
  job.avf = knobs.avf;
  job.protect = knobs.protect;
  if (cfg.has("bench")) {
    job.profile = cfg.get_string("bench", "");
    *label = job.profile;
    (void)workload::profile(job.profile);  // validate the name up front
    return job;
  }
  // Kernel / program / trace workloads: record once, share across jobs.
  auto stream = make_stream(cfg, label);
  std::vector<workload::DynOp> ops;
  workload::DynOp op;
  while (stream->next(&op)) ops.push_back(op);
  job.trace =
      std::make_shared<const std::vector<workload::DynOp>>(std::move(ops));
  return job;
}

/// Writes a metrics snapshot to `path` — CSV when the extension is .csv,
/// pretty JSON otherwise.
void write_metrics_file(const obs::MetricsSnapshot& snap,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write metrics file " + path);
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  out << (csv ? snap.to_csv() : snap.to_json(2) + "\n");
  Log::info("wrote metrics (" + std::to_string(snap.counters.size()) +
            " counters, " + std::to_string(snap.gauges.size()) + " gauges, " +
            std::to_string(snap.histograms.size()) + " histograms) to " +
            path);
}

int cmd_run(const Config& cfg) {
  std::string label;
  const auto stream = make_stream(cfg, &label);
  const CommonKnobs knobs = knobs_from(cfg);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = static_cast<unsigned>(cfg.get_int("threads", 1));
  sys_cfg.ser_per_inst = knobs.ser;
  sys_cfg.seed = knobs.seed;
  sys_cfg.fast_forward = knobs.fast_forward;
  sys_cfg.avf = knobs.avf;
  sys_cfg.uncore_protect = knobs.protect;

  const bool want_csv = cfg.get_bool("csv", false);
  const bool want_report = cfg.get_bool("report", false);
  const std::string format = cfg.get_string("format", "text");
  if (format != "text" && format != "json") {
    throw ConfigError("unknown format: " + format + " (text|json)");
  }
  const std::string metrics_path = cfg.get_string("metrics", "");
  const std::string trace_path = cfg.get_string("trace_out", "");

  const std::string system = cfg.get_string("system", "unsync");
  const auto kind = runtime::parse_system(system);
  if (!kind) throw ConfigError("unknown system: " + system);
  const auto model = core::make_model(*kind, sys_cfg, *stream, knobs.params);
  // The detailed tier is a full System (checkpoints, memory hierarchy
  // report); the fast interval model is not — sys stays null for it.
  auto* sys = dynamic_cast<core::System*>(model.get());

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    const auto flush_every =
        static_cast<std::uint64_t>(cfg.get_int("trace_flush_every", 256));
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_path, flush_every);
  }
  if (!metrics_path.empty() || trace_sink) {
    model->set_observability(metrics_path.empty() ? nullptr : &registry,
                             trace_sink.get());
  }

  // Checkpoint/restore (docs/CHECKPOINTS.md). resume= restores a snapshot
  // into the identically-configured system built above; checkpoint_at= runs
  // to that absolute cycle, saves, and exits — resuming the file later
  // yields the bit-exact result of the uninterrupted run.
  const std::string resume_path = cfg.get_string("resume", "");
  const std::string ckpt_path = cfg.get_string("checkpoint", "");
  const auto ckpt_at = static_cast<Cycle>(cfg.get_int("checkpoint_at", 0));
  if (!sys && (want_report || !resume_path.empty() || !ckpt_path.empty())) {
    throw ConfigError(
        "tier=fast supports neither checkpoints nor report=1 (the interval "
        "model recomputes from scratch and has no memory hierarchy to "
        "report; see docs/TIERS.md)");
  }
  if (!resume_path.empty()) sys->load_checkpoint_file(resume_path);
  if (ckpt_at > 0) {
    if (ckpt_path.empty()) {
      throw ConfigError("checkpoint_at= needs checkpoint=<file>");
    }
    sys->run(ckpt_at);
    sys->save_checkpoint_file(ckpt_path);
    std::cout << "checkpoint: " << system << " on " << label << " at cycle "
              << ckpt_at << " -> " << ckpt_path << "\n";
    return kExitOk;
  }

  const core::RunResult result = model->run();
  if (!ckpt_path.empty()) sys->save_checkpoint_file(ckpt_path);

  if (!metrics_path.empty()) {
    write_metrics_file(registry.snapshot(), metrics_path);
  }
  if (trace_sink) {
    trace_sink->flush();
    Log::info("wrote " + std::to_string(trace_sink->records_written()) +
              " trace records to " + trace_path);
  }

  if (format == "json") {
    std::cout << result.to_json() << "\n";
  } else if (want_csv) {
    std::cout << core::RunReport::csv_header()
              << core::RunReport(result).csv_rows();
  } else if (want_report) {
    core::RunReport(result, &sys->memory()).print(std::cout);
  } else {
    std::cout << system << " on " << label << ": " << result.cycles
              << " cycles, IPC " << TextTable::num(result.thread_ipc(), 4);
    if (result.errors_injected) {
      std::cout << ", errors " << result.errors_injected << ", recoveries "
                << result.recoveries << ", rollbacks " << result.rollbacks;
    }
    std::cout << "\n";
  }
  return kExitOk;
}

/// sweep param=<cb|fi|latency|group|ser> values=v1,v2,... plus the usual
/// run selectors — emits one CSV row per value. Points run concurrently
/// across threads= host workers; rows print in sweep order.
int cmd_sweep(const Config& cfg) {
  const std::string param = cfg.get_string("param", "");
  const std::string values = cfg.get_string("values", "");
  if (param.empty() || values.empty()) {
    throw ConfigError("sweep needs param= and values=v1,v2,...");
  }
  const std::vector<std::string> points = split_csv(values);

  const std::string system = cfg.get_string("system", "unsync");
  const auto kind = runtime::parse_system(system);
  if (!kind || (*kind != runtime::SystemKind::kUnSync &&
                *kind != runtime::SystemKind::kReunion &&
                *kind != runtime::SystemKind::kBaseline &&
                *kind != runtime::SystemKind::kHetero)) {
    throw ConfigError("sweep supports system=unsync|reunion|baseline|hetero");
  }

  const CommonKnobs knobs = knobs_from(cfg);
  std::string label;
  runtime::SimJob base = job_template(cfg, knobs, &label);
  base.system = *kind;
  base.app_threads = 1;
  // Sweeps keep the historical fixed-seed semantics: every point runs the
  // identical workload stream; only the swept parameter varies.
  base.seed = knobs.seed;

  std::vector<runtime::SimJob> jobs;
  jobs.reserve(points.size());
  for (const auto& point : points) {
    runtime::SimJob job = base;
    job.label = point;
    if (param == "cb") {
      job.params.unsync.cb_entries =
          static_cast<std::size_t>(std::stoll(point));
    } else if (param == "group") {
      job.params.unsync.group_size = static_cast<unsigned>(std::stoll(point));
    } else if (param == "fi") {
      job.params.reunion.fingerprint_interval =
          static_cast<unsigned>(std::stoll(point));
    } else if (param == "latency") {
      job.params.reunion.compare_latency =
          static_cast<Cycle>(std::stoll(point));
    } else if (param == "log") {
      job.params.hetero.log_entries =
          static_cast<std::size_t>(std::stoll(point));
    } else if (param == "ser") {
      job.ser_per_inst = std::stod(point);
    } else {
      throw ConfigError("unknown sweep param: " + param +
                        " (cb|fi|latency|group|log|ser)");
    }
    jobs.push_back(std::move(job));
  }

  runtime::CampaignRunner::Options opts;
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.campaign_seed = *base.seed;
  const auto out = runtime::CampaignRunner(opts).run(jobs);

  std::cout << param << ",system,cycles,ipc,errors,recoveries,rollbacks\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = out.results[i];
    std::cout << jobs[i].label << ',' << system << ',' << r.cycles << ','
              << TextTable::num(r.thread_ipc(), 4) << ','
              << r.errors_injected << ',' << r.recoveries << ','
              << r.rollbacks << '\n';
  }
  return kExitOk;
}

/// In-process scheduler selection shared by campaign / campaign-worker:
/// scheduler=stealing (default) | shared, chunk=N (0 = auto-size).
runtime::ScheduleOptions schedule_from(const Config& cfg) {
  runtime::ScheduleOptions s;
  const std::string mode = cfg.get_string("scheduler", "stealing");
  if (mode == "stealing") {
    s.mode = runtime::ScheduleMode::kWorkStealing;
  } else if (mode == "shared") {
    s.mode = runtime::ScheduleMode::kSharedQueue;
  } else {
    throw ConfigError("unknown scheduler: " + mode + " (stealing|shared)");
  }
  s.chunk = static_cast<std::size_t>(cfg.get_int("chunk", 0));
  return s;
}

/// Prefix-sharing knobs shared by campaign / campaign-worker /
/// campaign-coordinator: prefix_share=1 turns the engine on,
/// prefix_interval= sets the golden checkpoint cadence (campaign identity
/// — all distributed participants must agree), prefix_cache_mb= the
/// per-process LRU budget (performance only, free to differ).
runtime::PrefixOptions prefix_from(const Config& cfg) {
  runtime::PrefixOptions p;
  p.enabled = cfg.get_bool("prefix_share", false);
  p.interval = static_cast<Cycle>(cfg.get_int("prefix_interval", 5000));
  p.cache_mb = static_cast<std::size_t>(cfg.get_int("prefix_cache_mb", 256));
  if (!p.enabled &&
      (cfg.has("prefix_interval") || cfg.has("prefix_cache_mb"))) {
    throw ConfigError(
        "prefix_interval=/prefix_cache_mb= need prefix_share=1");
  }
  if (p.enabled && p.interval == 0) {
    throw ConfigError("prefix_interval= must be >= 1");
  }
  return p;
}

/// The (benchmark x system) grid shared by campaign / campaign-worker /
/// campaign-coordinator. Every participant of a distributed campaign must
/// build the identical grid from identical args — the journal grid-CRC
/// rejects any divergence.
struct CampaignGrid {
  std::vector<runtime::SystemKind> systems;
  std::vector<std::string> benches;
  std::vector<runtime::SimJob> jobs;
  std::uint64_t insts = 0;
};

CampaignGrid build_campaign_grid(const Config& cfg, const CommonKnobs& knobs) {
  CampaignGrid grid;
  const auto systems_arg =
      split_csv(cfg.get_string("systems", "baseline,unsync,reunion"));
  for (const auto& s : systems_arg) {
    const auto kind = runtime::parse_system(s);
    if (!kind) throw ConfigError("unknown system: " + s);
    grid.systems.push_back(*kind);
  }

  const std::string benches_arg = cfg.get_string("benches", "all");
  if (benches_arg == "all") {
    for (const auto& p : workload::all_profiles()) {
      grid.benches.push_back(p.name);
    }
  } else {
    grid.benches = split_csv(benches_arg);
    for (const auto& b : grid.benches) (void)workload::profile(b);  // validate
  }

  runtime::SimJob base;
  base.insts = static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  base.app_threads = static_cast<unsigned>(cfg.get_int("app_threads", 1));
  base.params = knobs.params;
  base.ser_per_inst = knobs.ser;
  base.fast_forward = knobs.fast_forward;
  base.avf = knobs.avf;
  base.protect = knobs.protect;
  grid.insts = base.insts;

  grid.jobs.reserve(grid.benches.size() * grid.systems.size());
  for (const auto& bench : grid.benches) {
    for (const auto kind : grid.systems) {
      runtime::SimJob job = base;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      grid.jobs.push_back(std::move(job));
    }
  }
  return grid;
}

/// Campaign output selection (table/CSV/JSON + metrics file), shared by the
/// single-process campaign and the distributed coordinator. The default
/// JSON surface is a pure function of the grid, so both paths emit
/// identical bytes for identical grids.
void emit_campaign_output(const Config& cfg, const CampaignGrid& grid,
                          const runtime::CampaignOutput& out,
                          const std::string& format,
                          const std::string& metrics_path) {
  if (!metrics_path.empty()) {
    // The file variant may carry wall-time (it is a measurement artifact,
    // not part of the deterministic result surface).
    obs::MetricsSnapshot snap = out.metrics;
    for (const auto s : out.job_wall_seconds) {
      snap.gauges["campaign.job_wall_seconds"].add(s);
    }
    snap.merge(out.scheduler_metrics);
    write_metrics_file(snap, metrics_path);
  }

  if (format == "json") {
    std::cout << out.to_json() << "\n";
  } else if (cfg.get_bool("csv", false)) {
    std::cout << "benchmark,system,cycles,ipc,errors,recoveries,rollbacks\n";
    for (std::size_t i = 0; i < grid.jobs.size(); ++i) {
      const auto& r = out.results[i];
      std::cout << grid.jobs[i].label << ',' << name_of(grid.jobs[i].system)
                << ',' << r.cycles << ',' << TextTable::num(r.thread_ipc(), 4)
                << ',' << r.errors_injected << ',' << r.recoveries << ','
                << r.rollbacks << '\n';
    }
  } else {
    TextTable t("Campaign: per-benchmark IPC (" + std::to_string(grid.insts) +
                " insts/run)");
    std::vector<std::string> header = {"benchmark"};
    for (const auto kind : grid.systems) header.emplace_back(name_of(kind));
    t.set_header(header);
    for (std::size_t b = 0; b < grid.benches.size(); ++b) {
      std::vector<std::string> row = {grid.benches[b]};
      for (std::size_t s = 0; s < grid.systems.size(); ++s) {
        row.push_back(TextTable::num(
            out.results[b * grid.systems.size() + s].thread_ipc(), 3));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
}

/// Validates format= and rejects trace_out= for multi-job commands.
std::string campaign_format(const Config& cfg) {
  const std::string format = cfg.get_string("format", "text");
  if (format != "text" && format != "json") {
    throw ConfigError("unknown format: " + format + " (text|json)");
  }
  if (cfg.has("trace_out")) {
    throw ConfigError(
        "trace_out= is only supported by `run` (a multi-job event trace "
        "would interleave nondeterministically)");
  }
  return format;
}

/// campaign: a (benchmark x system) grid across the host thread pool.
/// Job seeds derive from (seed=, job index), so the table/CSV/JSON is
/// byte-identical for threads=1 and threads=N.
int cmd_campaign(const Config& cfg) {
  const std::string format = campaign_format(cfg);
  const std::string metrics_path = cfg.get_string("metrics", "");
  const CommonKnobs knobs = knobs_from(cfg, /*allow_screen=*/true);
  const CampaignGrid grid = build_campaign_grid(cfg, knobs);

  runtime::CampaignRunner::Options opts;
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.schedule = schedule_from(cfg);
  opts.campaign_seed = knobs.seed;
  opts.screen = knobs.screen;
  opts.screen_threshold = knobs.screen_threshold;
  opts.collect_metrics = !metrics_path.empty() || format == "json";
  opts.prefix = prefix_from(cfg);
  opts.journal = cfg.get_string("checkpoint", "");
  opts.checkpoint_every =
      static_cast<std::size_t>(cfg.get_int("checkpoint_every", 1));
  opts.resume = cfg.get_bool("resume", false);
  if (opts.resume && opts.journal.empty()) {
    throw ConfigError("resume=1 needs checkpoint=<journal file>");
  }
  if (cfg.get_bool("progress", false)) {
    opts.progress = [](std::size_t completed, std::size_t total) {
      Log::info("campaign progress " + std::to_string(completed) + "/" +
                std::to_string(total));
    };
  }
  const auto out = runtime::CampaignRunner(opts).run(grid.jobs);

  emit_campaign_output(cfg, grid, out, format, metrics_path);
  Log::info("[campaign] " + std::to_string(grid.jobs.size()) + " jobs, " +
            std::to_string(out.total_instructions()) +
            " simulated instructions in " +
            TextTable::num(out.wall_seconds, 2) + "s");
  return kExitOk;
}

/// Distributed-campaign knobs shared by worker and coordinator. The screen
/// policy rides in `knobs` because it is part of the campaign identity
/// (folded into the manifest grid CRC) — every participant must agree.
runtime::DistributedOptions distributed_from(const Config& cfg,
                                             const CommonKnobs& knobs) {
  runtime::DistributedOptions opts;
  opts.dir = cfg.get_string("dir", "");
  if (opts.dir.empty()) throw ConfigError("dir=<campaign dir> is required");
  opts.workers = static_cast<unsigned>(cfg.get_int("workers", 0));
  if (opts.workers == 0) throw ConfigError("workers=<N >= 1> is required");
  opts.campaign_seed = knobs.seed;
  opts.screen = knobs.screen;
  opts.screen_threshold = knobs.screen_threshold;
  opts.prefix = prefix_from(cfg);
  opts.checkpoint_every =
      static_cast<std::size_t>(cfg.get_int("checkpoint_every", 1));
  return opts;
}

/// campaign-worker: run shard worker= of a workers=-way distributed
/// campaign, journaling into dir=/shard_<worker>.jsonl. Safe to kill -9
/// and rerun: valid journal lines are restored, torn ones re-run.
int cmd_campaign_worker(const Config& cfg) {
  const CommonKnobs knobs = knobs_from(cfg, /*allow_screen=*/true);
  const CampaignGrid grid = build_campaign_grid(cfg, knobs);
  runtime::DistributedOptions opts = distributed_from(cfg, knobs);
  if (!cfg.has("worker")) throw ConfigError("worker=<shard index> is required");
  opts.shard = static_cast<unsigned>(cfg.get_int("worker", 0));
  if (opts.shard >= opts.workers) {
    throw ConfigError("worker= must be < workers=");
  }
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 1));
  opts.schedule = schedule_from(cfg);
  opts.steal = cfg.get_bool("steal", true);
  opts.collect_metrics = cfg.get_bool("collect_metrics", false);
  if (cfg.get_bool("progress", false)) {
    const unsigned shard = opts.shard;
    opts.progress = [shard](std::size_t completed, std::size_t) {
      Log::info("worker " + std::to_string(shard) + " completed " +
                std::to_string(completed) + " jobs");
    };
  }
  const std::size_t ran = runtime::run_worker(grid.jobs, opts);
  std::cout << "worker " << opts.shard << "/" << opts.workers << ": ran "
            << ran << " of " << grid.jobs.size() << " jobs -> "
            << runtime::shard_journal_path(opts.dir, opts.shard) << "\n";
  return kExitOk;
}

/// campaign-coordinator: pin the campaign manifest, wait until the shard
/// journals cover every job, and emit output byte-identical to a serial
/// `campaign` run of the same grid.
int cmd_campaign_coordinator(const Config& cfg) {
  const std::string format = campaign_format(cfg);
  const std::string metrics_path = cfg.get_string("metrics", "");
  const CommonKnobs knobs = knobs_from(cfg, /*allow_screen=*/true);
  const CampaignGrid grid = build_campaign_grid(cfg, knobs);
  runtime::DistributedOptions opts = distributed_from(cfg, knobs);
  opts.collect_metrics = !metrics_path.empty() || format == "json";
  opts.poll_ms = static_cast<unsigned>(cfg.get_int("poll_ms", 100));
  opts.timeout_seconds = cfg.get_double("timeout", 600.0);
  const auto out = runtime::merge_shards(grid.jobs, opts);
  emit_campaign_output(cfg, grid, out, format, metrics_path);
  Log::info("[campaign-coordinator] merged " + std::to_string(opts.workers) +
            " shards, " + std::to_string(grid.jobs.size()) + " jobs, " +
            std::to_string(out.total_instructions()) +
            " simulated instructions");
  return kExitOk;
}

/// campaign status journal=<path>: journal health without running anything
/// (works on single-process journals and distributed shard journals alike).
int cmd_campaign_status(const Config& cfg) {
  const std::string path = cfg.get_string("journal", "");
  if (path.empty()) {
    throw ConfigError("campaign status needs journal=<file>");
  }
  const auto status = runtime::journal_status(path);
  std::cout << "journal:      " << path << "\n"
            << "schema:       " << ckpt::kCampaignJournalSchema << "\n"
            << "campaign_seed " << status.header.campaign_seed << "\n"
            << "jobs:         " << status.header.jobs << "\n"
            << "grid_crc:     " << status.header.grid_crc << "\n"
            << "metrics:      "
            << (status.header.collect_metrics ? "collected" : "off") << "\n";
  if (status.header.shard) {
    std::cout << "shard:        " << *status.header.shard << " of "
              << status.header.workers.value_or(0) << "\n";
  }
  std::cout << "done:         " << status.done << "\n"
            << "pending:      " << status.pending() << "\n"
            << "duplicates:   " << status.duplicates << "\n"
            << "corrupt:      " << status.corrupt << "\n";
  if (status.prefix) {
    const auto& p = *status.prefix;
    std::cout << "prefix cache: goldens=" << p.goldens_built
              << " hits=" << p.hits << " misses=" << p.misses
              << " evictions=" << p.evictions << " bytes=" << p.bytes << "\n"
              << "prefix jobs:  restored=" << p.jobs_restored
              << " spliced=" << p.jobs_spliced
              << " bypassed=" << p.jobs_bypassed
              << " cycles_skipped=" << p.cycles_skipped << "\n";
  }
  // Corrupt entries are an input problem the caller must know about —
  // exit 2 (configuration error), same as an unreadable/mismatched header,
  // so scripts can gate on the journal being healthy. The counts above
  // still print: "what is broken" beats a bare nonzero exit.
  return status.corrupt > 0 ? kExitConfigError : kExitOk;
}

int cmd_characterize(const Config& cfg) {
  std::string label;
  const auto stream = make_stream(cfg, &label);
  const auto stats = workload::characterize(*stream);
  std::cout << stats.summary(label);
  return kExitOk;
}

int cmd_asm(const Config& cfg) {
  const std::string path = cfg.get_string("program", "");
  if (path.empty()) throw ConfigError("asm needs program=<file.s>");
  const auto prog = isa::Assembler::assemble(read_file(path));
  std::cout << "assembled " << prog.code.size() << " instructions, "
            << prog.data.size() << " data bytes\n";
  isa::FunctionalSim sim(prog);
  sim.run(static_cast<std::uint64_t>(cfg.get_int("max_steps", 10'000'000)));
  std::cout << "retired " << sim.retired() << " instructions; "
            << (sim.halted() ? "halted" : "STEP LIMIT REACHED") << "\n";
  for (std::size_t i = 0; i < sim.output().size(); ++i) {
    std::cout << "output[" << i << "] = " << sim.output()[i] << "\n";
  }
  return kExitOk;
}

int cmd_record(const Config& cfg) {
  const std::string out = cfg.get_string("out", "");
  if (out.empty()) throw ConfigError("record needs out=<file.utrc>");
  std::string label;
  const auto stream = make_stream(cfg, &label);
  std::vector<workload::DynOp> ops;
  workload::DynOp op;
  while (stream->next(&op)) ops.push_back(op);
  workload::save_trace(out, ops);
  std::cout << "wrote " << ops.size() << " ops (" << label << ") to " << out
            << "\n";
  return kExitOk;
}

int cmd_hw(const Config& cfg) {
  const int fi = static_cast<int>(cfg.get_int("fi", 10));
  const int cb = static_cast<int>(cfg.get_int("cb", 10));
  const auto mips = hwmodel::mips_baseline();
  TextTable t("Per-core hardware (65nm, 300MHz)");
  t.set_header({"config", "core um^2", "L1 um^2", "total um^2", "power W",
                "area ovh", "power ovh"});
  for (const auto& hw :
       {mips, hwmodel::reunion_core(fi), hwmodel::unsync_core(cb),
        hwmodel::unsync_hardened_core(cb)}) {
    t.add_row({hw.name, TextTable::num(hw.core_area_um2, 0),
               TextTable::num(hw.l1_area_um2, 0),
               TextTable::num(hw.total_area_um2(), 0),
               TextTable::num(hw.total_power_w(), 3),
               TextTable::pct(hw.area_overhead_vs(mips)),
               TextTable::pct(hw.power_overhead_vs(mips))});
  }
  t.print(std::cout);
  return kExitOk;
}

/// avf-report: run an avf=1 campaign (default: unsync on one benchmark) and
/// emit the "unsync.avf_report.v1" JSON — measured per-structure ACE
/// exposure joined with the protection plan's coverage and hwmodel costs.
/// The default unsync grid covers all six uncore structures (the CBs are
/// the write_buffer instances). Byte-identical for any threads= value: the
/// report is built from the worker-count-independent merged counters.
int cmd_avf_report(const Config& cfg) {
  const CommonKnobs knobs = knobs_from(cfg);
  if (cfg.has("avf") && !knobs.avf) {
    throw ConfigError("avf-report implies avf=1 (drop avf=0)");
  }
  if (knobs.params.tier != engine::Tier::kDetailed) {
    throw ConfigError(
        "avf-report needs tier=detailed (the interval model has no uncore "
        "residency to measure; see docs/TIERS.md)");
  }

  const auto systems_arg = split_csv(cfg.get_string("systems", "unsync"));
  std::vector<runtime::SystemKind> systems;
  for (const auto& s : systems_arg) {
    const auto kind = runtime::parse_system(s);
    if (!kind) throw ConfigError("unknown system: " + s);
    systems.push_back(*kind);
  }
  const auto benches = split_csv(cfg.get_string("benches", "gzip"));
  for (const auto& b : benches) (void)workload::profile(b);  // validate

  runtime::SimJob base;
  base.insts = static_cast<std::uint64_t>(cfg.get_int("insts", 20000));
  base.app_threads = static_cast<unsigned>(cfg.get_int("app_threads", 1));
  base.params = knobs.params;
  base.ser_per_inst = knobs.ser;
  base.fast_forward = knobs.fast_forward;
  base.avf = true;
  base.protect = knobs.protect;

  std::vector<runtime::SimJob> jobs;
  jobs.reserve(benches.size() * systems.size());
  for (const auto& bench : benches) {
    for (const auto kind : systems) {
      runtime::SimJob job = base;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      jobs.push_back(std::move(job));
    }
  }

  runtime::CampaignRunner::Options opts;
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.schedule = schedule_from(cfg);
  opts.campaign_seed = knobs.seed;
  opts.collect_metrics = true;
  const auto out = runtime::CampaignRunner(opts).run(jobs);

  fault::AvfReport report = fault::build_avf_report(out.metrics, knobs.protect);
  // hwmodel join: the published capacity_bits sum over jobs; every job
  // instruments the identical structures, so per-chip bits = sum / jobs.
  for (auto& s : report.structures) {
    const auto hw = hwmodel::uncore_protection_hardware(
        s.mechanism, s.capacity_bits / jobs.size());
    s.area_delta_um2 = hw.area_um2;
    s.power_delta_w = hw.power_w;
  }

  const auto indent = static_cast<int>(cfg.get_int("indent", 2));
  const std::string report_json = report.to_json(indent);
  const std::string out_path = cfg.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) throw std::runtime_error("cannot write " + out_path);
    f << report_json << "\n";
    Log::info("wrote AVF report to " + out_path);
  } else {
    std::cout << report_json << "\n";
  }
  return kExitOk;
}

/// Prints every stable serialization schema this binary reads or writes,
/// plus the build configuration — the first thing to capture in a bug
/// report, and what scripts check before trusting archived artifacts.
int cmd_version() {
  std::cout << "unsync_sim — UnSync soft-error resilience simulator\n"
            << "schemas:\n"
            << "  run result        unsync.run_result.v2\n"
            << "  campaign          unsync.campaign.v2\n"
            << "  metrics           unsync.metrics.v1\n"
            << "  checkpoint        " << ckpt::kSchema << "\n"
            << "  campaign journal  unsync.campaign_journal.v1\n"
            << "  avf report        unsync.avf_report.v1\n"
            << "  system ckpt tags  BASE UNSY REUN LOCK DMRC HTRO\n"
            << "build:\n"
            << "  compiler          " <<
#if defined(__clang__)
      "clang " << __clang_major__ << "." << __clang_minor__
#elif defined(__GNUC__)
      "gcc " << __GNUC__ << "." << __GNUC_MINOR__
#else
      "unknown"
#endif
            << "\n  c++ standard      " << __cplusplus
            << "\n  assertions        " <<
#ifdef NDEBUG
      "off (NDEBUG)"
#else
      "on"
#endif
            << "\n  trace gate        " <<
#ifdef UNSYNC_TRACE_DISABLED
      "compiled out (UNSYNC_TRACE_DISABLED)"
#else
      "runtime (enabled when a sink is attached)"
#endif
            << "\n";
  return kExitOk;
}

int cmd_list() {
  std::cout << "benchmark profiles:\n";
  for (const auto& p : workload::all_profiles()) {
    std::cout << "  " << p.name << " (" << p.suite << ", serializing "
              << TextTable::pct(p.mix.serializing, 1) << ", stores "
              << TextTable::pct(p.mix.store, 0) << ")\n";
  }
  std::cout << "kernels:\n";
  for (const auto& k : workload::standard_kernel_suite()) {
    std::cout << "  " << k.name << "\n";
  }
  std::cout << "systems: baseline unsync reunion lockstep checkpoint hetero\n";
  return kExitOk;
}

/// Accepts GNU-style spellings: "--key=value" -> "key=value", a bare
/// "--flag" -> "flag=1", and kebab-case keys map onto the snake_case
/// vocabulary ("--screen-threshold=5" -> "screen_threshold=5"). Only the
/// key part is rewritten — values (file paths, benchmark lists) keep their
/// dashes. Returns the normalized argument strings.
std::vector<std::string> normalize_args(int argc, char** argv) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        eq = arg.size();
        arg += "=1";
      }
      std::replace(arg.begin(), arg.begin() + static_cast<std::ptrdiff_t>(eq),
                   '-', '_');
    }
    out.push_back(std::move(arg));
  }
  return out;
}

bool is_help(const std::string& arg) {
  return arg == "help" || arg == "-h" || arg == "--help" || arg == "help=1";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw ConfigError("unknown log level: " + name +
                    " (debug|info|warn|error|off)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return kExitConfigError;
  }
  const std::vector<std::string> args = normalize_args(argc - 1, argv + 1);
  if (is_help(args.front())) {
    print_usage(std::cout);
    return kExitOk;
  }
  std::string command = args.front();
  std::size_t first_option = 1;
  // "campaign status" is a two-word subcommand (the second word would
  // otherwise be rejected as a stray positional argument).
  if (command == "campaign" && args.size() > 1 && args[1] == "status") {
    command = "campaign-status";
    first_option = 2;
  }

  std::vector<const char*> arg_ptrs;  // Config::from_args skips argv[0]
  arg_ptrs.push_back("unsync_sim");
  for (std::size_t i = first_option; i < args.size(); ++i) {
    if (is_help(args[i])) {
      print_usage(std::cout);
      return kExitOk;
    }
    arg_ptrs.push_back(args[i].c_str());
  }

  int rc = -1;
  try {
    std::vector<std::string> positional;
    const Config cfg = Config::from_args(static_cast<int>(arg_ptrs.size()),
                                         arg_ptrs.data(), &positional);
    Log::set_level(parse_log_level(cfg.get_string("log", "warn")));
    if (!positional.empty()) {
      throw ConfigError("unexpected argument '" + positional.front() +
                        "' (options are key=value)");
    }
    if (command == "run") rc = cmd_run(cfg);
    else if (command == "sweep") rc = cmd_sweep(cfg);
    else if (command == "campaign") rc = cmd_campaign(cfg);
    else if (command == "campaign-worker") rc = cmd_campaign_worker(cfg);
    else if (command == "campaign-coordinator") {
      rc = cmd_campaign_coordinator(cfg);
    }
    else if (command == "campaign-status") rc = cmd_campaign_status(cfg);
    else if (command == "characterize") rc = cmd_characterize(cfg);
    else if (command == "asm") rc = cmd_asm(cfg);
    else if (command == "record") rc = cmd_record(cfg);
    else if (command == "hw") rc = cmd_hw(cfg);
    else if (command == "avf-report" || command == "avf_report") {
      rc = cmd_avf_report(cfg);
    }
    else if (command == "list") rc = cmd_list();
    // normalize_args rewrites a bare --version to "version=1".
    else if (command == "version" || command == "version=1") {
      rc = cmd_version();
    }
    if (rc == -1) {
      throw ConfigError("unknown subcommand '" + command + "'");
    }
    // A key nobody consulted is a misconfiguration (e.g. thread=8 instead
    // of threads=8): fail loudly rather than silently simulating defaults.
    if (rc == kExitOk && cfg.report_unused("unsync_sim")) {
      return kExitConfigError;
    }
    return rc;
  } catch (const ConfigError& e) {
    Log::error(e.what());
    print_usage(std::cerr);
    return kExitConfigError;
  } catch (const ckpt::CkptError& e) {
    // A malformed / corrupt / mismatched checkpoint or journal is an input
    // problem ("fix the file you pointed me at"), not a simulation failure.
    Log::error(std::string("checkpoint error: ") + e.what());
    return kExitConfigError;
  } catch (const isa::AsmError& e) {
    Log::error(std::string("assembly error: ") + e.what());
    return kExitSimError;
  } catch (const std::exception& e) {
    Log::error(e.what());
    return kExitSimError;
  }
}
