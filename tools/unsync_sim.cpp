// unsync_sim — the command-line front end of the simulator.
//
// Subcommands:
//   run          simulate a workload on a chosen architecture
//   sweep        one CSV row per value of a swept parameter
//   campaign     a (benchmark x system) grid across a host thread pool
//   characterize print a stream characterisation (benchmark-table style)
//   asm          assemble + functionally execute a URISC source file
//   record       record a URISC program into a binary UTRC trace file
//   hw           print the hardware model summary for each architecture
//   list         list built-in benchmark profiles and kernels
//
// Workload selection (for run / sweep / campaign / characterize / record):
//   bench=<name>      one of the built-in statistical profiles
//   kernel=<name>     one of the built-in URISC kernels (e.g. matmul_8)
//   program=<file.s>  assemble and trace a URISC source file
//   trace=<file.utrc> replay a previously recorded binary trace
//
// Parallelism: sweep and campaign fan their independent simulations out
// across host threads (threads=N, default: hardware concurrency). Results
// are aggregated in submission order and every job seed derives from
// (seed, job_index), so output is byte-identical for any thread count.
//
// Examples:
//   unsync_sim run system=unsync bench=bzip2 insts=100000 ser=1e-9 report=1
//   unsync_sim campaign systems=baseline,unsync,reunion insts=50000 csv=1
//   unsync_sim sweep param=cb values=8,64,256 system=unsync bench=susan
//   unsync_sim characterize bench=susan insts=50000
//   unsync_sim hw
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/baseline.hpp"
#include "core/related_work.hpp"
#include "core/report.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "hwmodel/core_model.hpp"
#include "isa/assembler.hpp"
#include "isa/functional_sim.hpp"
#include "runtime/campaign.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/kernels.hpp"
#include "workload/profile.hpp"
#include "workload/stream_stats.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace {

using namespace unsync;

int usage() {
  std::cout <<
      "usage: unsync_sim <run|sweep|campaign|characterize|asm|record|hw|list>"
      " [key=value...]\n"
      "  run: system=unsync|reunion|baseline|lockstep|checkpoint\n"
      "       bench=|kernel=|program=|trace=   [insts= seed= threads= ser=]\n"
      "       unsync: cb=<entries> group=<N>   reunion: fi= latency=\n"
      "       checkpoint: interval= capture=   output: report=1 csv=1\n"
      "  sweep: param=<cb|fi|latency|group|ser> values=v1,v2,... + run args\n"
      "         [threads=<host workers, default all cores>]\n"
      "  campaign: [systems=baseline,unsync,reunion] [benches=n1,n2|all]\n"
      "            [insts= seed= ser= threads=<host workers> csv=1]\n"
      "  characterize: bench=|kernel=|program=|trace=  [insts= seed=]\n"
      "  asm: program=<file.s> [max_steps=]\n"
      "  record: bench=|kernel=|program=  out=<file.utrc> [insts= seed=]\n"
      "  hw: [fi= cb=]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_csv(const std::string& values) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : values) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Builds the workload stream selected by bench=/kernel=/program=/trace=.
std::unique_ptr<workload::InstStream> make_stream(const Config& cfg,
                                                  std::string* label) {
  const auto insts =
      static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  if (cfg.has("bench")) {
    const std::string name = cfg.get_string("bench", "");
    *label = name;
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(name), seed, insts);
  }
  if (cfg.has("kernel")) {
    const std::string name = cfg.get_string("kernel", "");
    *label = name;
    for (const auto& k : workload::standard_kernel_suite()) {
      if (k.name == name) {
        return std::make_unique<workload::TraceStream>(
            workload::record_trace(workload::assemble(k), 3'000'000));
      }
    }
    throw std::runtime_error("unknown kernel: " + name +
                             " (see `unsync_sim list`)");
  }
  if (cfg.has("program")) {
    const std::string path = cfg.get_string("program", "");
    *label = path;
    const auto prog = isa::Assembler::assemble(read_file(path));
    return std::make_unique<workload::TraceStream>(
        workload::record_trace(prog, insts));
  }
  if (cfg.has("trace")) {
    const std::string path = cfg.get_string("trace", "");
    *label = path;
    return std::make_unique<workload::TraceStream>(
        workload::load_trace(path));
  }
  throw std::runtime_error(
      "select a workload with bench=, kernel=, program= or trace=");
}

/// Architecture parameter block shared by run/sweep/campaign: reads every
/// per-system knob from the config (harmless for systems not selected).
void fill_params(const Config& cfg, runtime::SimJob* job) {
  job->unsync.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 128));
  job->unsync.group_size = static_cast<unsigned>(cfg.get_int("group", 2));
  job->reunion.fingerprint_interval =
      static_cast<unsigned>(cfg.get_int("fi", 10));
  job->reunion.compare_latency = static_cast<Cycle>(cfg.get_int("latency", 10));
  job->checkpoint.checkpoint_interval =
      static_cast<std::uint64_t>(cfg.get_int("interval", 1000));
  job->checkpoint.checkpoint_cost =
      static_cast<Cycle>(cfg.get_int("capture", 120));
  job->ser_per_inst = cfg.get_double("ser", 0.0);
}

/// Resolves the sweep/campaign workload into a SimJob template: a profile
/// name for synthetic benchmarks, or a shared recorded trace otherwise.
runtime::SimJob job_template(const Config& cfg, std::string* label) {
  runtime::SimJob job;
  job.insts = static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  fill_params(cfg, &job);
  if (cfg.has("bench")) {
    job.profile = cfg.get_string("bench", "");
    *label = job.profile;
    (void)workload::profile(job.profile);  // validate the name up front
    return job;
  }
  // Kernel / program / trace workloads: record once, share across jobs.
  auto stream = make_stream(cfg, label);
  std::vector<workload::DynOp> ops;
  workload::DynOp op;
  while (stream->next(&op)) ops.push_back(op);
  job.trace =
      std::make_shared<const std::vector<workload::DynOp>>(std::move(ops));
  return job;
}

int cmd_run(const Config& cfg) {
  std::string label;
  const auto stream = make_stream(cfg, &label);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = static_cast<unsigned>(cfg.get_int("threads", 1));
  sys_cfg.ser_per_inst = cfg.get_double("ser", 0.0);
  sys_cfg.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  const bool want_csv = cfg.get_bool("csv", false);
  const bool want_report = cfg.get_bool("report", false);

  const std::string system = cfg.get_string("system", "unsync");
  std::unique_ptr<core::System> sys;
  mem::MemoryHierarchy* memory = nullptr;
  if (system == "baseline") {
    auto s = std::make_unique<core::BaselineSystem>(sys_cfg, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "unsync") {
    core::UnSyncParams p;
    p.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 128));
    p.group_size = static_cast<unsigned>(cfg.get_int("group", 2));
    auto s = std::make_unique<core::UnSyncSystem>(sys_cfg, p, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "reunion") {
    core::ReunionParams p;
    p.fingerprint_interval = static_cast<unsigned>(cfg.get_int("fi", 10));
    p.compare_latency = static_cast<Cycle>(cfg.get_int("latency", 10));
    auto s = std::make_unique<core::ReunionSystem>(sys_cfg, p, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "lockstep") {
    auto s = std::make_unique<core::LockstepSystem>(
        sys_cfg, core::LockstepParams{}, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "checkpoint") {
    core::CheckpointParams p;
    p.checkpoint_interval =
        static_cast<std::uint64_t>(cfg.get_int("interval", 1000));
    p.checkpoint_cost = static_cast<Cycle>(cfg.get_int("capture", 120));
    auto s = std::make_unique<core::DmrCheckpointSystem>(sys_cfg, p, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else {
    std::cerr << "unknown system: " << system << "\n";
    return usage();
  }

  const core::RunResult result = sys->run();
  if (want_csv) {
    std::cout << core::RunReport::csv_header()
              << core::RunReport(result).csv_rows();
  } else if (want_report) {
    core::RunReport(result, memory).print(std::cout);
  } else {
    std::cout << system << " on " << label << ": " << result.cycles
              << " cycles, IPC " << TextTable::num(result.thread_ipc(), 4);
    if (result.errors_injected) {
      std::cout << ", errors " << result.errors_injected << ", recoveries "
                << result.recoveries << ", rollbacks " << result.rollbacks;
    }
    std::cout << "\n";
  }
  return 0;
}

/// sweep param=<cb|fi|latency|group|ser> values=v1,v2,... plus the usual
/// run selectors — emits one CSV row per value. Points run concurrently
/// across threads= host workers; rows print in sweep order.
int cmd_sweep(const Config& cfg) {
  const std::string param = cfg.get_string("param", "");
  const std::string values = cfg.get_string("values", "");
  if (param.empty() || values.empty()) {
    std::cerr << "sweep needs param= and values=v1,v2,...\n";
    return usage();
  }
  const std::vector<std::string> points = split_csv(values);

  const std::string system = cfg.get_string("system", "unsync");
  const auto kind = runtime::parse_system(system);
  if (!kind || (*kind != runtime::SystemKind::kUnSync &&
                *kind != runtime::SystemKind::kReunion &&
                *kind != runtime::SystemKind::kBaseline)) {
    std::cerr << "sweep supports system=unsync|reunion|baseline\n";
    return 2;
  }

  std::string label;
  runtime::SimJob base = job_template(cfg, &label);
  base.system = *kind;
  base.app_threads = 1;
  // Sweeps keep the historical fixed-seed semantics: every point runs the
  // identical workload stream; only the swept parameter varies.
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::vector<runtime::SimJob> jobs;
  jobs.reserve(points.size());
  for (const auto& point : points) {
    runtime::SimJob job = base;
    job.label = point;
    if (param == "cb") {
      job.unsync.cb_entries = static_cast<std::size_t>(std::stoll(point));
    } else if (param == "group") {
      job.unsync.group_size = static_cast<unsigned>(std::stoll(point));
    } else if (param == "fi") {
      job.reunion.fingerprint_interval =
          static_cast<unsigned>(std::stoll(point));
    } else if (param == "latency") {
      job.reunion.compare_latency = static_cast<Cycle>(std::stoll(point));
    } else if (param == "ser") {
      job.ser_per_inst = std::stod(point);
    } else {
      std::cerr << "unknown sweep param: " << param
                << " (cb|fi|latency|group|ser)\n";
      return 2;
    }
    jobs.push_back(std::move(job));
  }

  runtime::CampaignRunner::Options opts;
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.campaign_seed = *base.seed;
  const auto out = runtime::CampaignRunner(opts).run(jobs);

  std::cout << param << ",system,cycles,ipc,errors,recoveries,rollbacks\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = out.results[i];
    std::cout << jobs[i].label << ',' << system << ',' << r.cycles << ','
              << TextTable::num(r.thread_ipc(), 4) << ','
              << r.errors_injected << ',' << r.recoveries << ','
              << r.rollbacks << '\n';
  }
  return 0;
}

/// campaign: a (benchmark x system) grid across the host thread pool.
/// Job seeds derive from (seed=, job index), so the table/CSV is
/// byte-identical for threads=1 and threads=N.
int cmd_campaign(const Config& cfg) {
  const auto systems_arg =
      split_csv(cfg.get_string("systems", "baseline,unsync,reunion"));
  std::vector<runtime::SystemKind> systems;
  for (const auto& s : systems_arg) {
    const auto kind = runtime::parse_system(s);
    if (!kind) {
      std::cerr << "unknown system: " << s << "\n";
      return usage();
    }
    systems.push_back(*kind);
  }

  std::vector<std::string> benches;
  const std::string benches_arg = cfg.get_string("benches", "all");
  if (benches_arg == "all") {
    for (const auto& p : workload::all_profiles()) benches.push_back(p.name);
  } else {
    benches = split_csv(benches_arg);
    for (const auto& b : benches) (void)workload::profile(b);  // validate
  }

  runtime::SimJob base;
  base.insts = static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  base.app_threads = static_cast<unsigned>(cfg.get_int("app_threads", 1));
  fill_params(cfg, &base);

  std::vector<runtime::SimJob> jobs;
  jobs.reserve(benches.size() * systems.size());
  for (const auto& bench : benches) {
    for (const auto kind : systems) {
      runtime::SimJob job = base;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      jobs.push_back(std::move(job));
    }
  }

  runtime::CampaignRunner::Options opts;
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.campaign_seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const auto out = runtime::CampaignRunner(opts).run(jobs);

  if (cfg.get_bool("csv", false)) {
    std::cout << "benchmark,system,cycles,ipc,errors,recoveries,rollbacks\n";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto& r = out.results[i];
      std::cout << jobs[i].label << ',' << name_of(jobs[i].system) << ','
                << r.cycles << ',' << TextTable::num(r.thread_ipc(), 4)
                << ',' << r.errors_injected << ',' << r.recoveries << ','
                << r.rollbacks << '\n';
    }
  } else {
    TextTable t("Campaign: per-benchmark IPC (" + std::to_string(base.insts) +
                " insts/run)");
    std::vector<std::string> header = {"benchmark"};
    for (const auto kind : systems) header.emplace_back(name_of(kind));
    t.set_header(header);
    for (std::size_t b = 0; b < benches.size(); ++b) {
      std::vector<std::string> row = {benches[b]};
      for (std::size_t s = 0; s < systems.size(); ++s) {
        row.push_back(TextTable::num(
            out.results[b * systems.size() + s].thread_ipc(), 3));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
  std::cerr << "[campaign] " << jobs.size() << " jobs, "
            << out.total_instructions() << " simulated instructions in "
            << TextTable::num(out.wall_seconds, 2) << "s\n";
  return 0;
}

int cmd_characterize(const Config& cfg) {
  std::string label;
  const auto stream = make_stream(cfg, &label);
  const auto stats = workload::characterize(*stream);
  std::cout << stats.summary(label);
  return 0;
}

int cmd_asm(const Config& cfg) {
  const std::string path = cfg.get_string("program", "");
  if (path.empty()) return usage();
  const auto prog = isa::Assembler::assemble(read_file(path));
  std::cout << "assembled " << prog.code.size() << " instructions, "
            << prog.data.size() << " data bytes\n";
  isa::FunctionalSim sim(prog);
  sim.run(static_cast<std::uint64_t>(cfg.get_int("max_steps", 10'000'000)));
  std::cout << "retired " << sim.retired() << " instructions; "
            << (sim.halted() ? "halted" : "STEP LIMIT REACHED") << "\n";
  for (std::size_t i = 0; i < sim.output().size(); ++i) {
    std::cout << "output[" << i << "] = " << sim.output()[i] << "\n";
  }
  return 0;
}

int cmd_record(const Config& cfg) {
  const std::string out = cfg.get_string("out", "");
  if (out.empty()) {
    std::cerr << "record needs out=<file.utrc>\n";
    return usage();
  }
  std::string label;
  const auto stream = make_stream(cfg, &label);
  std::vector<workload::DynOp> ops;
  workload::DynOp op;
  while (stream->next(&op)) ops.push_back(op);
  workload::save_trace(out, ops);
  std::cout << "wrote " << ops.size() << " ops (" << label << ") to " << out
            << "\n";
  return 0;
}

int cmd_hw(const Config& cfg) {
  const int fi = static_cast<int>(cfg.get_int("fi", 10));
  const int cb = static_cast<int>(cfg.get_int("cb", 10));
  const auto mips = hwmodel::mips_baseline();
  TextTable t("Per-core hardware (65nm, 300MHz)");
  t.set_header({"config", "core um^2", "L1 um^2", "total um^2", "power W",
                "area ovh", "power ovh"});
  for (const auto& hw :
       {mips, hwmodel::reunion_core(fi), hwmodel::unsync_core(cb),
        hwmodel::unsync_hardened_core(cb)}) {
    t.add_row({hw.name, TextTable::num(hw.core_area_um2, 0),
               TextTable::num(hw.l1_area_um2, 0),
               TextTable::num(hw.total_area_um2(), 0),
               TextTable::num(hw.total_power_w(), 3),
               TextTable::pct(hw.area_overhead_vs(mips)),
               TextTable::pct(hw.power_overhead_vs(mips))});
  }
  t.print(std::cout);
  return 0;
}

int cmd_list() {
  std::cout << "benchmark profiles:\n";
  for (const auto& p : workload::all_profiles()) {
    std::cout << "  " << p.name << " (" << p.suite << ", serializing "
              << TextTable::pct(p.mix.serializing, 1) << ", stores "
              << TextTable::pct(p.mix.store, 0) << ")\n";
  }
  std::cout << "kernels:\n";
  for (const auto& k : workload::standard_kernel_suite()) {
    std::cout << "  " << k.name << "\n";
  }
  std::cout << "systems: baseline unsync reunion lockstep checkpoint\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(argc - 1, argv + 1, &positional);
  if (!positional.empty()) {
    std::cerr << "error: unexpected argument '" << positional.front()
              << "' (options are key=value)\n";
    return usage();
  }
  int rc = -1;
  try {
    if (command == "run") rc = cmd_run(cfg);
    else if (command == "sweep") rc = cmd_sweep(cfg);
    else if (command == "campaign") rc = cmd_campaign(cfg);
    else if (command == "characterize") rc = cmd_characterize(cfg);
    else if (command == "asm") rc = cmd_asm(cfg);
    else if (command == "record") rc = cmd_record(cfg);
    else if (command == "hw") rc = cmd_hw(cfg);
    else if (command == "list") rc = cmd_list();
  } catch (const isa::AsmError& e) {
    std::cerr << "assembly error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (rc == -1) return usage();
  // A key nobody consulted is a misconfiguration (e.g. thread=8 instead of
  // threads=8): fail loudly rather than silently simulating defaults.
  if (rc == 0 && cfg.report_unused("unsync_sim")) return 2;
  return rc;
}
