// unsync_sim — the command-line front end of the simulator.
//
// Subcommands:
//   run          simulate a workload on a chosen architecture
//   characterize print a stream characterisation (benchmark-table style)
//   asm          assemble + functionally execute a URISC source file
//   record       record a URISC program into a binary UTRC trace file
//   hw           print the hardware model summary for each architecture
//   list         list built-in benchmark profiles and kernels
//
// Workload selection (for run / characterize / record):
//   bench=<name>      one of the built-in statistical profiles
//   kernel=<name>     one of the built-in URISC kernels (e.g. matmul_8)
//   program=<file.s>  assemble and trace a URISC source file
//   trace=<file.utrc> replay a previously recorded binary trace
//
// Examples:
//   unsync_sim run system=unsync bench=bzip2 insts=100000 ser=1e-9 report=1
//   unsync_sim run system=reunion kernel=matmul_8 fi=30 latency=40
//   unsync_sim characterize bench=susan insts=50000
//   unsync_sim asm program=examples/my_kernel.s
//   unsync_sim hw
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/baseline.hpp"
#include "core/related_work.hpp"
#include "core/report.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "hwmodel/core_model.hpp"
#include "isa/assembler.hpp"
#include "isa/functional_sim.hpp"
#include "workload/kernels.hpp"
#include "workload/profile.hpp"
#include "workload/stream_stats.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace {

using namespace unsync;

int usage() {
  std::cout <<
      "usage: unsync_sim <run|sweep|characterize|asm|record|hw|list> "
      "[key=value...]\n"
      "  run: system=unsync|reunion|baseline|lockstep|checkpoint\n"
      "       bench=|kernel=|program=|trace=   [insts= seed= threads= ser=]\n"
      "       unsync: cb=<entries> group=<N>   reunion: fi= latency=\n"
      "       checkpoint: interval= capture=   output: report=1 csv=1\n"
      "  sweep: param=<cb|fi|latency|group|ser> values=v1,v2,... + run args\n"
      "  characterize: bench=|kernel=|program=|trace=  [insts= seed=]\n"
      "  asm: program=<file.s> [max_steps=]\n"
      "  record: bench=|kernel=|program=  out=<file.utrc> [insts= seed=]\n"
      "  hw: [fi= cb=]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Builds the workload stream selected by bench=/kernel=/program=/trace=.
std::unique_ptr<workload::InstStream> make_stream(const Config& cfg,
                                                  std::string* label) {
  const auto insts =
      static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  if (cfg.has("bench")) {
    const std::string name = cfg.get_string("bench", "");
    *label = name;
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(name), seed, insts);
  }
  if (cfg.has("kernel")) {
    const std::string name = cfg.get_string("kernel", "");
    *label = name;
    for (const auto& k : workload::standard_kernel_suite()) {
      if (k.name == name) {
        return std::make_unique<workload::TraceStream>(
            workload::record_trace(workload::assemble(k), 3'000'000));
      }
    }
    throw std::runtime_error("unknown kernel: " + name +
                             " (see `unsync_sim list`)");
  }
  if (cfg.has("program")) {
    const std::string path = cfg.get_string("program", "");
    *label = path;
    const auto prog = isa::Assembler::assemble(read_file(path));
    return std::make_unique<workload::TraceStream>(
        workload::record_trace(prog, insts));
  }
  if (cfg.has("trace")) {
    const std::string path = cfg.get_string("trace", "");
    *label = path;
    return std::make_unique<workload::TraceStream>(
        workload::load_trace(path));
  }
  throw std::runtime_error(
      "select a workload with bench=, kernel=, program= or trace=");
}

int cmd_run(const Config& cfg) {
  std::string label;
  const auto stream = make_stream(cfg, &label);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = static_cast<unsigned>(cfg.get_int("threads", 1));
  sys_cfg.ser_per_inst = cfg.get_double("ser", 0.0);
  sys_cfg.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  const std::string system = cfg.get_string("system", "unsync");
  std::unique_ptr<core::System> sys;
  mem::MemoryHierarchy* memory = nullptr;
  if (system == "baseline") {
    auto s = std::make_unique<core::BaselineSystem>(sys_cfg, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "unsync") {
    core::UnSyncParams p;
    p.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 128));
    p.group_size = static_cast<unsigned>(cfg.get_int("group", 2));
    auto s = std::make_unique<core::UnSyncSystem>(sys_cfg, p, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "reunion") {
    core::ReunionParams p;
    p.fingerprint_interval = static_cast<unsigned>(cfg.get_int("fi", 10));
    p.compare_latency = static_cast<Cycle>(cfg.get_int("latency", 10));
    auto s = std::make_unique<core::ReunionSystem>(sys_cfg, p, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "lockstep") {
    auto s = std::make_unique<core::LockstepSystem>(
        sys_cfg, core::LockstepParams{}, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else if (system == "checkpoint") {
    core::CheckpointParams p;
    p.checkpoint_interval =
        static_cast<std::uint64_t>(cfg.get_int("interval", 1000));
    p.checkpoint_cost = static_cast<Cycle>(cfg.get_int("capture", 120));
    auto s = std::make_unique<core::DmrCheckpointSystem>(sys_cfg, p, *stream);
    memory = &s->memory();
    sys = std::move(s);
  } else {
    std::cerr << "unknown system: " << system << "\n";
    return usage();
  }

  const core::RunResult result = sys->run();
  if (cfg.get_bool("csv", false)) {
    std::cout << core::RunReport::csv_header()
              << core::RunReport(result).csv_rows();
  } else if (cfg.get_bool("report", false)) {
    core::RunReport(result, memory).print(std::cout);
  } else {
    std::cout << system << " on " << label << ": " << result.cycles
              << " cycles, IPC " << TextTable::num(result.thread_ipc(), 4);
    if (result.errors_injected) {
      std::cout << ", errors " << result.errors_injected << ", recoveries "
                << result.recoveries << ", rollbacks " << result.rollbacks;
    }
    std::cout << "\n";
  }
  return 0;
}

/// sweep param=<cb|fi|latency|group|ser> values=v1,v2,... plus the usual
/// run selectors — emits one CSV row per value.
int cmd_sweep(Config cfg) {
  const std::string param = cfg.get_string("param", "");
  const std::string values = cfg.get_string("values", "");
  if (param.empty() || values.empty()) {
    std::cerr << "sweep needs param= and values=v1,v2,...\n";
    return usage();
  }
  std::vector<std::string> points;
  std::string cur;
  for (const char c : values) {
    if (c == ',') {
      points.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) points.push_back(cur);

  std::cout << param << ",system,cycles,ipc,errors,recoveries,rollbacks\n";
  for (const auto& point : points) {
    cfg.set(param, point);
    std::string label;
    const auto stream = make_stream(cfg, &label);
    core::SystemConfig sys_cfg;
    sys_cfg.num_threads = static_cast<unsigned>(cfg.get_int("threads", 1));
    sys_cfg.ser_per_inst = cfg.get_double("ser", 0.0);
    sys_cfg.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

    const std::string system = cfg.get_string("system", "unsync");
    std::unique_ptr<core::System> sys;
    if (system == "unsync") {
      core::UnSyncParams p;
      p.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 128));
      p.group_size = static_cast<unsigned>(cfg.get_int("group", 2));
      sys = std::make_unique<core::UnSyncSystem>(sys_cfg, p, *stream);
    } else if (system == "reunion") {
      core::ReunionParams p;
      p.fingerprint_interval = static_cast<unsigned>(cfg.get_int("fi", 10));
      p.compare_latency = static_cast<Cycle>(cfg.get_int("latency", 10));
      sys = std::make_unique<core::ReunionSystem>(sys_cfg, p, *stream);
    } else if (system == "baseline") {
      sys = std::make_unique<core::BaselineSystem>(sys_cfg, *stream);
    } else {
      std::cerr << "sweep supports system=unsync|reunion|baseline\n";
      return 2;
    }
    const core::RunResult r = sys->run();
    std::cout << point << ',' << system << ',' << r.cycles << ','
              << TextTable::num(r.thread_ipc(), 4) << ','
              << r.errors_injected << ',' << r.recoveries << ','
              << r.rollbacks << '\n';
  }
  return 0;
}

int cmd_characterize(const Config& cfg) {
  std::string label;
  const auto stream = make_stream(cfg, &label);
  const auto stats = workload::characterize(*stream);
  std::cout << stats.summary(label);
  return 0;
}

int cmd_asm(const Config& cfg) {
  const std::string path = cfg.get_string("program", "");
  if (path.empty()) return usage();
  const auto prog = isa::Assembler::assemble(read_file(path));
  std::cout << "assembled " << prog.code.size() << " instructions, "
            << prog.data.size() << " data bytes\n";
  isa::FunctionalSim sim(prog);
  sim.run(static_cast<std::uint64_t>(cfg.get_int("max_steps", 10'000'000)));
  std::cout << "retired " << sim.retired() << " instructions; "
            << (sim.halted() ? "halted" : "STEP LIMIT REACHED") << "\n";
  for (std::size_t i = 0; i < sim.output().size(); ++i) {
    std::cout << "output[" << i << "] = " << sim.output()[i] << "\n";
  }
  return 0;
}

int cmd_record(const Config& cfg) {
  const std::string out = cfg.get_string("out", "");
  if (out.empty()) {
    std::cerr << "record needs out=<file.utrc>\n";
    return usage();
  }
  std::string label;
  const auto stream = make_stream(cfg, &label);
  std::vector<workload::DynOp> ops;
  workload::DynOp op;
  while (stream->next(&op)) ops.push_back(op);
  workload::save_trace(out, ops);
  std::cout << "wrote " << ops.size() << " ops (" << label << ") to " << out
            << "\n";
  return 0;
}

int cmd_hw(const Config& cfg) {
  const int fi = static_cast<int>(cfg.get_int("fi", 10));
  const int cb = static_cast<int>(cfg.get_int("cb", 10));
  const auto mips = hwmodel::mips_baseline();
  TextTable t("Per-core hardware (65nm, 300MHz)");
  t.set_header({"config", "core um^2", "L1 um^2", "total um^2", "power W",
                "area ovh", "power ovh"});
  for (const auto& hw :
       {mips, hwmodel::reunion_core(fi), hwmodel::unsync_core(cb),
        hwmodel::unsync_hardened_core(cb)}) {
    t.add_row({hw.name, TextTable::num(hw.core_area_um2, 0),
               TextTable::num(hw.l1_area_um2, 0),
               TextTable::num(hw.total_area_um2(), 0),
               TextTable::num(hw.total_power_w(), 3),
               TextTable::pct(hw.area_overhead_vs(mips)),
               TextTable::pct(hw.power_overhead_vs(mips))});
  }
  t.print(std::cout);
  return 0;
}

int cmd_list() {
  std::cout << "benchmark profiles:\n";
  for (const auto& p : workload::all_profiles()) {
    std::cout << "  " << p.name << " (" << p.suite << ", serializing "
              << TextTable::pct(p.mix.serializing, 1) << ", stores "
              << TextTable::pct(p.mix.store, 0) << ")\n";
  }
  std::cout << "kernels:\n";
  for (const auto& k : workload::standard_kernel_suite()) {
    std::cout << "  " << k.name << "\n";
  }
  std::cout << "systems: baseline unsync reunion lockstep checkpoint\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(argc - 1, argv + 1, &positional);
  try {
    if (command == "run") return cmd_run(cfg);
    if (command == "sweep") return cmd_sweep(cfg);
    if (command == "characterize") return cmd_characterize(cfg);
    if (command == "asm") return cmd_asm(cfg);
    if (command == "record") return cmd_record(cfg);
    if (command == "hw") return cmd_hw(cfg);
    if (command == "list") return cmd_list();
  } catch (const isa::AsmError& e) {
    std::cerr << "assembly error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
